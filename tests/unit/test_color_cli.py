"""Unit tests for the repro-color CLI."""

import pytest

from repro.cli import build_parser, main
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.graphs.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    g = erdos_renyi_avg_degree(24, 4.0, seed=3)
    path = tmp_path / "net.edges"
    write_edge_list(g, path)
    return path, g


class TestParser:
    def test_defaults(self, graph_file):
        path, _ = graph_file
        args = build_parser().parse_args([str(path)])
        assert args.algorithm == "alg1"
        assert args.seed == 0

    def test_unknown_algorithm(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            build_parser().parse_args([str(path), "--algorithm", "magic"])


class TestMain:
    def test_alg1_stdout(self, graph_file, capsys):
        path, g = graph_file
        assert main([str(path), "--seed", "4"]) == 0
        captured = capsys.readouterr()
        assert "algorithm=alg1" in captured.err
        assert len(captured.out.strip().splitlines()) == g.num_edges

    @pytest.mark.parametrize("algorithm", ["greedy", "misra-gries", "dima2ed"])
    def test_all_algorithms_run(self, graph_file, capsys, algorithm):
        path, _ = graph_file
        assert main([str(path), "--algorithm", algorithm, "--quiet"]) == 0
        assert f"algorithm={algorithm}" in capsys.readouterr().err

    def test_tsv_output(self, graph_file, tmp_path, capsys):
        path, g = graph_file
        out = tmp_path / "colors.tsv"
        assert main([str(path), "--out", str(out)]) == 0
        rows = out.read_text().strip().splitlines()
        assert len(rows) == g.num_edges
        u, v, c = rows[0].split("\t")
        assert g.has_edge(int(u), int(v))
        assert int(c) >= 0

    def test_dot_output(self, graph_file, tmp_path):
        path, _ = graph_file
        dot = tmp_path / "colored.dot"
        assert main([str(path), "--dot", str(dot), "--quiet"]) == 0
        assert dot.read_text().startswith("graph G {")

    def test_dima2ed_dot_is_digraph(self, graph_file, tmp_path):
        path, _ = graph_file
        dot = tmp_path / "channels.dot"
        assert main(
            [str(path), "--algorithm", "dima2ed", "--dot", str(dot), "--quiet"]
        ) == 0
        assert dot.read_text().startswith("digraph G {")

    def test_deterministic(self, graph_file, tmp_path):
        path, _ = graph_file
        a = tmp_path / "a.tsv"
        b = tmp_path / "b.tsv"
        main([str(path), "--seed", "9", "--out", str(a)])
        main([str(path), "--seed", "9", "--out", str(b)])
        assert a.read_text() == b.read_text()
