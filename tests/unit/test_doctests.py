"""Execute the doc examples embedded in public docstrings.

Doc examples rot silently unless executed; this wires the modules whose
docstrings carry ``>>>`` examples (and the package README quickstart)
into the test run.
"""

import doctest
import pathlib
import re

import pytest

import repro
import repro.graphs.adjacency
import repro.types

DOCTEST_MODULES = [repro.graphs.adjacency, repro.types, repro]


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=[m.__name__ for m in DOCTEST_MODULES]
)
def test_module_doctests(module):
    failures, attempted = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert failures == 0
    assert attempted > 0  # the module is expected to carry examples


class TestReadmeQuickstart:
    def test_quickstart_block_executes(self):
        """Run the README's first python block verbatim."""
        readme = pathlib.Path(repro.__file__).parents[2] / "README.md"
        text = readme.read_text(encoding="utf-8")
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)  # noqa: S102
        # The quickstart leaves verified results in scope.
        assert "result" in namespace and "channels" in namespace

    def test_install_commands_documented(self):
        readme = pathlib.Path(repro.__file__).parents[2] / "README.md"
        text = readme.read_text(encoding="utf-8")
        assert "pip install -e ." in text
        assert "pytest benchmarks/ --benchmark-only" in text
