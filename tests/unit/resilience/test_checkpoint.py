"""Unit tests for the checkpoint store, format, and resume validation."""

import pickle

import pytest

from repro.core.edge_coloring import EdgeColoringProgram
from repro.errors import ConfigurationError, GraphError
from repro.graphs.generators import cycle_graph, erdos_renyi_avg_degree
from repro.resilience import (
    CHECKPOINT_FORMAT,
    Checkpointer,
    CheckpointStore,
    EngineCheckpoint,
    load_checkpoint,
    resume_engine,
)
from repro.runtime.engine import SynchronousEngine


def _one_checkpoint(graph=None, *, seed=0, kill=9, every=4):
    """Run a killed engine and hand back (store, baseline RunResult)."""
    graph = graph if graph is not None else erdos_renyi_avg_degree(30, 4.0, seed=2)
    store = CheckpointStore(keep=3)
    SynchronousEngine(
        graph,
        EdgeColoringProgram,
        seed=seed,
        max_supersteps=kill,
        checkpointer=Checkpointer(every, store),
    ).run()
    return store, graph


class TestCheckpointer:
    def test_due_schedule(self):
        ck = Checkpointer(5)
        assert [s for s in range(16) if ck.due(s)] == [5, 10, 15]

    def test_never_due_at_zero(self):
        assert not Checkpointer(1).due(0)

    @pytest.mark.parametrize("every", [0, -3])
    def test_invalid_period(self, every):
        with pytest.raises(ConfigurationError):
            Checkpointer(every)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Checkpointer(1).capture("exotic", 0, {}, {})

    def test_capture_counts(self):
        store, _ = _one_checkpoint(kill=9, every=4)
        # Periodic at 4 and 8, plus the budget-exhaustion capture at 9.
        assert [cp.superstep for cp in store.checkpoints] == [4, 8, 9]

    def test_capture_is_isolated_from_the_live_run(self):
        g = cycle_graph(8)
        store = CheckpointStore()
        SynchronousEngine(
            g,
            EdgeColoringProgram,
            seed=1,
            max_supersteps=3,
            checkpointer=Checkpointer(2, store),
        ).run()
        cp = store.latest()
        before = cp.digest()
        # Restoring hands out copies; mutating one never taints the store.
        state = cp.restore()
        state["metrics"].messages_sent += 999
        state["programs"][0].edge_colors[12345] = 7
        assert cp.digest() == before


class TestCheckpointStore:
    def test_ring_evicts_oldest(self):
        store = CheckpointStore(keep=2)
        for s in (1, 2, 3):
            store.push(EngineCheckpoint("pernode", s, False, {}, {}))
        assert [cp.superstep for cp in store.checkpoints] == [2, 3]
        assert store.latest().superstep == 3
        assert len(store) == 2

    def test_keep_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointStore(keep=0)

    def test_empty_store(self):
        assert CheckpointStore().latest() is None

    def test_disk_persistence_and_load_latest(self, tmp_path):
        store = CheckpointStore(keep=2, directory=tmp_path)
        for s in (3, 7):
            store.push(EngineCheckpoint("pernode", s, False, {}, {"s": s}))
        files = sorted(p.name for p in tmp_path.glob("checkpoint-*.ckpt"))
        assert files == ["checkpoint-00000003.ckpt", "checkpoint-00000007.ckpt"]
        latest = CheckpointStore.load_latest(tmp_path)
        assert latest.superstep == 7 and latest.payload == {"s": 7}

    def test_load_latest_empty_directory(self, tmp_path):
        assert CheckpointStore.load_latest(tmp_path) is None


class TestFormatVersioning:
    def test_save_load_round_trip(self, tmp_path):
        cp = EngineCheckpoint("pernode", 12, True, {"nodes": 3}, {"x": [1, 2]})
        path = cp.save(tmp_path / "a.ckpt")
        loaded = load_checkpoint(path)
        assert (loaded.kind, loaded.superstep, loaded.needs_general) == (
            "pernode",
            12,
            True,
        )
        assert loaded.meta == {"nodes": 3} and loaded.payload == {"x": [1, 2]}
        assert loaded.format == CHECKPOINT_FORMAT

    def test_newer_format_refused(self, tmp_path):
        path = tmp_path / "future.ckpt"
        with open(path, "wb") as fh:
            pickle.dump(
                {
                    "format": CHECKPOINT_FORMAT + 1,
                    "kind": "pernode",
                    "superstep": 0,
                    "needs_general": False,
                    "meta": {},
                    "payload": {},
                },
                fh,
            )
        with pytest.raises(ConfigurationError, match="newer"):
            load_checkpoint(path)

    def test_digest_stable_and_content_sensitive(self):
        a = EngineCheckpoint("pernode", 1, False, {}, {"k": 1})
        b = EngineCheckpoint("pernode", 1, False, {}, {"k": 1})
        c = EngineCheckpoint("pernode", 1, False, {}, {"k": 2})
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()


class TestResumeValidation:
    def test_wrong_kind_rejected_by_engine(self):
        g = cycle_graph(4)
        cp = EngineCheckpoint("batched", 3, False, {}, {})
        with pytest.raises(GraphError, match="pernode"):
            SynchronousEngine(g, EdgeColoringProgram, resume=cp)

    def test_topology_mismatch_rejected_on_thaw(self):
        store, _ = _one_checkpoint()
        other = cycle_graph(5)
        with pytest.raises(GraphError, match="captured with"):
            resume_engine(store.latest(), other).run()

    def test_resume_never_calls_factory(self):
        store, graph = _one_checkpoint()
        run = resume_engine(store.latest(), graph).run()
        assert run.completed  # _unused_factory would have raised


class TestResumeObservabilityReattach:
    """Regression: a resumed leg must keep metering and publishing when
    the caller hands its registry/publisher back to resume_engine —
    observability state never rides inside the checkpoint itself."""

    def test_registry_folds_resumed_leg_metrics(self):
        from repro.obs.registry import MetricsRegistry

        store, graph = _one_checkpoint()
        registry = MetricsRegistry()
        run = resume_engine(store.latest(), graph, registry=registry).run()
        assert run.completed
        snap = registry.snapshot()
        steps = snap["repro_supersteps"]["samples"]
        assert steps and steps[0]["value"] == run.metrics.supersteps
        assert steps[0]["labels"] == {"engine": "pernode"}
        msgs = snap["repro_messages_sent"]["samples"]
        assert msgs[0]["value"] == run.metrics.messages_sent > 0

    def test_publisher_reattaches_and_finalizes(self, tmp_path):
        from repro.obs.live import SnapshotPublisher, read_ring

        store, graph = _one_checkpoint()
        ring = tmp_path / "resume.jsonl"
        with SnapshotPublisher(ring, interval=0.0) as publisher:
            run = resume_engine(
                store.latest(), graph, publisher=publisher
            ).run()
        assert run.completed
        records = read_ring(ring)
        assert records[-1]["snapshot"].get("final") is True
        # The resumed leg continues the killed run's superstep count
        # rather than restarting from zero.
        supersteps = [
            r["snapshot"]["superstep"]
            for r in records
            if "superstep" in r["snapshot"]
        ]
        assert supersteps and supersteps[-1] >= 9

    def test_resume_without_observability_still_clean(self):
        store, graph = _one_checkpoint()
        engine = resume_engine(store.latest(), graph)
        assert engine.registry is None
        assert engine.run().completed
