"""Unit tests for the chaos campaign orchestrator and its report."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.resilience import ChaosConfig, chaos_campaign
from repro.resilience.chaos import FAULT_CLASSES, _percentile

SMALL = dict(budget_seconds=None, seed=11, nodes=80, avg_degree=5.0)


class TestConfigValidation:
    def test_needs_some_budget(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(budget_seconds=None, max_runs=None)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget_seconds": 0},
            {"budget_seconds": None, "max_runs": 0},
            {"nodes": 1},
            {"family": "torus"},
            {"fault_classes": ("loss", "gamma-rays")},
            {"fault_classes": ()},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChaosConfig(**{**SMALL, "max_runs": 1, **kwargs})

    def test_all_fault_classes_have_builders(self):
        assert set(ChaosConfig(max_runs=1).fault_classes) == set(FAULT_CLASSES)


class TestPercentile:
    def test_nearest_rank(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(xs, 50) == 2.0
        assert _percentile(xs, 99) == 4.0
        assert _percentile([7.0], 50) == 7.0


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return chaos_campaign(config=ChaosConfig(max_runs=6, **SMALL))

    def test_visits_classes_round_robin(self, report):
        assert [r.fault_class for r in report.records] == list(FAULT_CLASSES)

    def test_survives_and_monitors_stay_silent(self, report):
        # The point of the recovery + supervision stack: every tortured
        # run yields a verified (possibly partial) coloring and the
        # conservation monitor never fires.
        assert report.survivability == 1.0
        assert report.monitor_violations == 0
        assert report.ok

    def test_ratios_are_relative_to_baseline(self, report):
        assert report.baseline_rounds > 0
        for record in report.records:
            assert record.recovery_ratio == pytest.approx(
                record.rounds / report.baseline_rounds
            )
            assert record.message_overhead > 0

    def test_per_class_percentiles_present(self, report):
        per_class = report.per_class()
        for name in FAULT_CLASSES:
            agg = per_class[name]
            assert agg["runs"] == 1
            assert set(agg["recovery_ratio"]) == {"p50", "p90", "p99"}
            assert set(agg["message_overhead"]) == {"p50", "p90", "p99"}

    def test_deterministic_modulo_wall_clock(self, report):
        again = chaos_campaign(config=ChaosConfig(max_runs=6, **SMALL))
        strip = lambda r: {
            k: v for k, v in r.to_dict().items() if k != "wall_seconds"
        }
        assert [strip(r) for r in again.records] == [
            strip(r) for r in report.records
        ]

    def test_json_round_trip(self, report, tmp_path):
        path = report.to_json(tmp_path / "report.json")
        data = json.loads(path.read_text())
        assert data["ok"] is True
        assert data["runs"] == 6
        assert len(data["records"]) == 6
        assert data["graph"]["nodes"] == 80
        assert set(data["per_class"]) == set(FAULT_CLASSES)

    def test_ascii_report_shape(self, report):
        text = report.ascii_report()
        assert "survivability: 100.0%" in text
        assert "monitor violations: 0" in text
        for name in FAULT_CLASSES:
            assert name in text

    def test_supplied_graph_wins_over_config(self):
        g = erdos_renyi_avg_degree(40, 4.0, seed=9)
        report = chaos_campaign(
            g, config=ChaosConfig(max_runs=1, **SMALL)
        )
        assert report.graph_nodes == 40
        assert report.graph_edges == g.num_edges

    def test_class_subset_respected(self):
        report = chaos_campaign(
            config=ChaosConfig(
                max_runs=4, fault_classes=("loss", "dup"), **SMALL
            )
        )
        assert [r.fault_class for r in report.records] == [
            "loss", "dup", "loss", "dup",
        ]
