"""Unit tests for deadline supervision and graceful degradation."""

import pytest

from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.errors import ConfigurationError
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.resilience import (
    CheckpointStore,
    SupervisionPolicy,
    supervise_edge_coloring,
)
from repro.runtime.faults import CrashNodes, DropRandomMessages
from repro.verify import check_proper_edge_coloring

GRAPH = erdos_renyi_avg_degree(90, 5.0, seed=17)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wall_clock_budget": 0.0},
            {"wall_clock_budget": -1.0},
            {"round_budget": 0},
            {"slice_rounds": 0},
            {"checkpoint_every_rounds": 0},
            {"plateau_rounds": 0},
            {"transport_jitter": 1.0},
            {"transport_jitter": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(**kwargs)

    def test_defaults_valid(self):
        policy = SupervisionPolicy()
        assert policy.slice_rounds >= 1


class TestCleanRuns:
    def test_matches_unsupervised_run_exactly(self):
        base = color_edges(GRAPH, seed=5)
        sup = supervise_edge_coloring(
            GRAPH, seed=5, policy=SupervisionPolicy(slice_rounds=4)
        )
        assert sup.completed and sup.outcome == "completed"
        assert sup.verified
        assert sup.colors == base.colors
        assert sup.rounds == base.rounds
        assert sup.supersteps == base.supersteps
        assert sup.metrics.to_dict() == base.metrics.to_dict()
        assert sup.legs > 1  # the slicing actually happened

    def test_single_slice_when_budget_generous(self):
        sup = supervise_edge_coloring(
            GRAPH, seed=5, policy=SupervisionPolicy(slice_rounds=10_000)
        )
        assert sup.completed and sup.legs == 1

    def test_colored_fraction_reaches_one(self):
        sup = supervise_edge_coloring(GRAPH, seed=3)
        assert sup.colored_fraction == pytest.approx(1.0)


class TestGracefulDegradation:
    def test_round_budget_yields_verified_partial(self):
        sup = supervise_edge_coloring(
            GRAPH,
            seed=5,
            policy=SupervisionPolicy(round_budget=3, slice_rounds=2),
        )
        assert sup.outcome == "round_budget"
        assert not sup.completed
        assert sup.verified  # partial but proper
        assert 0.0 < sup.colored_fraction < 1.0
        assert check_proper_edge_coloring(GRAPH, sup.colors) == []

    def test_plateau_detected_under_total_loss(self):
        # 100% loss in recovery mode: every node stays live and keeps
        # heartbeating but no edge can ever color — the plateau
        # detector must put the run out of its misery.
        sup = supervise_edge_coloring(
            GRAPH,
            seed=2,
            params=EdgeColoringParams(recovery=True),
            faults=DropRandomMessages(1.0, seed=1),
            policy=SupervisionPolicy(
                plateau_rounds=6, slice_rounds=4, round_budget=5_000
            ),
        )
        assert sup.outcome == "plateau"
        assert sup.colored_fraction == 0.0
        assert sup.verified  # the empty coloring is vacuously proper

    def test_deadline_trips(self):
        sup = supervise_edge_coloring(
            GRAPH,
            seed=2,
            params=EdgeColoringParams(recovery=True),
            faults=DropRandomMessages(0.95, seed=4),
            policy=SupervisionPolicy(
                wall_clock_budget=1e-6, slice_rounds=1, plateau_rounds=None
            ),
        )
        assert sup.outcome == "deadline"
        assert sup.verified

    def test_crashy_run_survives_and_verifies(self):
        sup = supervise_edge_coloring(
            GRAPH,
            seed=6,
            params=EdgeColoringParams(recovery=True),
            faults=CrashNodes.random(GRAPH.num_nodes, 0.08, window=(4, 40), seed=3),
            policy=SupervisionPolicy(slice_rounds=8),
        )
        assert sup.verified
        assert len(sup.crashed) > 0
        assert sup.outcome in ("completed", "round_budget", "plateau")


class TestCheckpointTrail:
    def test_store_receives_checkpoints(self):
        store = CheckpointStore(keep=4)
        sup = supervise_edge_coloring(
            GRAPH,
            seed=5,
            policy=SupervisionPolicy(slice_rounds=4, checkpoint_every_rounds=2),
            store=store,
        )
        assert sup.checkpoints_taken >= len(store.checkpoints) >= 1
        assert all(cp.kind == "pernode" for cp in store.checkpoints)

    def test_legs_and_wall_seconds_reported(self):
        sup = supervise_edge_coloring(
            GRAPH, seed=5, policy=SupervisionPolicy(slice_rounds=4)
        )
        assert sup.legs >= 2
        assert sup.wall_seconds > 0.0
