"""Unit tests for workload cells and materialization."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.workloads import (
    WorkloadCell,
    er_builder,
    materialize,
    scaled_count,
    sf_builder,
    sw_builder,
)


def er_cell(label="cell-a", count=3, n=20, deg=4.0):
    return WorkloadCell(
        label=label, builder=er_builder, params={"n": n, "deg": deg}, count=count
    )


class TestScaledCount:
    def test_identity(self):
        assert scaled_count(50, 1.0) == 50

    def test_scaling(self):
        assert scaled_count(50, 0.1) == 5

    def test_floor_of_one(self):
        assert scaled_count(50, 0.001) == 1

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            scaled_count(50, 0.0)


class TestCellGraphs:
    def test_count_respected(self):
        graphs = list(er_cell(count=4).graphs(base_seed=1))
        assert len(graphs) == 4
        assert [i for i, _ in graphs] == [0, 1, 2, 3]

    def test_deterministic(self):
        a = [g for _, g in er_cell().graphs(base_seed=7)]
        b = [g for _, g in er_cell().graphs(base_seed=7)]
        assert a == b

    def test_replicates_differ(self):
        graphs = [g for _, g in er_cell(count=3).graphs(base_seed=1)]
        assert graphs[0] != graphs[1]

    def test_builder_params_applied(self):
        for _, g in er_cell(n=33).graphs(base_seed=1):
            assert g.num_nodes == 33


class TestMaterialize:
    def test_streams_all_cells(self):
        cells = [er_cell("a", count=2), er_cell("b", count=3)]
        rows = list(materialize(cells, base_seed=5))
        assert len(rows) == 5
        assert [c.label for c, _, _ in rows] == ["a", "a", "b", "b", "b"]

    def test_same_params_different_labels_differ(self):
        cells = [er_cell("a", count=1), er_cell("b", count=1)]
        (_, _, ga), (_, _, gb) = materialize(cells, base_seed=5)
        assert ga != gb

    def test_cross_process_stability_uses_crc_not_hash(self):
        # The seed derivation must not involve salted str.__hash__;
        # check the generated graph is stable against a fixed fingerprint.
        (_, _, g) = next(iter(materialize([er_cell("stable", count=1)], 123)))
        fingerprint = (g.num_nodes, g.num_edges, sorted(g.edges())[:3])
        (_, _, g2) = next(iter(materialize([er_cell("stable", count=1)], 123)))
        assert fingerprint == (g2.num_nodes, g2.num_edges, sorted(g2.edges())[:3])


class TestBuilders:
    def test_sf_builder(self):
        import numpy as np

        g = sf_builder({"n": 30, "m": 2, "power": 1.0}, np.random.default_rng(1))
        assert g.num_nodes == 30

    def test_sw_builder(self):
        import numpy as np

        g = sw_builder({"n": 20, "k": 4, "beta": 0.2}, np.random.default_rng(1))
        assert g.num_edges == 40
