"""Unit tests for text-table rendering."""

from repro.experiments.tables import render_histogram, render_kv, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 400]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_formatting(self):
        out = render_table(["x"], [[3.14159]])
        assert "3.14" in out and "3.14159" not in out

    def test_empty_rows(self):
        out = render_table(["h1", "h2"], [])
        assert "h1" in out


class TestRenderKv:
    def test_contains_pairs(self):
        out = render_kv("Title", {"alpha": 1, "beta": 2.5})
        assert "Title" in out
        assert "alpha" in out and "2.50" in out

    def test_empty(self):
        out = render_kv("T", {})
        assert out.startswith("T")


class TestRenderHistogram:
    def test_bars_proportional(self):
        out = render_histogram({0: 10, 1: 5}, label="x")
        lines = out.splitlines()
        bar0 = lines[0].count("#")
        bar1 = lines[1].count("#")
        assert bar0 == 2 * bar1

    def test_percentages(self):
        out = render_histogram({0: 3, 1: 1})
        assert "75.0%" in out and "25.0%" in out

    def test_empty(self):
        assert "no" in render_histogram({}, label="colors")

    def test_keys_sorted(self):
        out = render_histogram({2: 1, 0: 1, 1: 1}, label="v")
        positions = [out.find(f"v={k:+d}") for k in (0, 1, 2)]
        assert positions == sorted(positions)
