"""Unit tests for the experiments CLI --selfcheck option."""

import repro.core.batched as batched
from repro.experiments.cli import main, run_selfcheck


class TestSelfcheck:
    def test_passes_and_runs_experiment(self, capsys):
        code = main(["fig3", "--scale", "0.02", "--selfcheck"])
        assert code == 0
        out = capsys.readouterr().out
        assert "selfcheck passed" in out
        assert "all tiers agree" in out

    def test_divergence_aborts_the_run(self, capsys, monkeypatch):
        orig = batched.lowest_free_bit
        monkeypatch.setattr(
            batched,
            "lowest_free_bit",
            lambda mask: orig(mask) + (1 if bin(mask).count("1") >= 2 else 0),
        )
        code = main(["fig3", "--scale", "0.02", "--selfcheck"])
        assert code == 1
        out = capsys.readouterr().out
        assert "selfcheck FAILED" in out
        # The experiment itself must not have started.
        assert "rounds" not in out.split("selfcheck FAILED")[1]

    def test_helper_returns_bool(self, capsys):
        assert run_selfcheck(3) is True
