"""Unit tests for the UDG channel-assignment experiment."""

import pytest

from repro.experiments import udg_channels


class TestRun:
    @pytest.fixture(scope="class")
    def rows(self):
        return udg_channels.run(n=25, radii=(0.2, 0.3), count=2, base_seed=31)

    def test_row_per_radius(self, rows):
        assert [r.cell for r in rows] == ["n=25 r=0.2", "n=25 r=0.3"]

    def test_density_increases_delta_and_rounds(self, rows):
        sparse, dense = rows
        assert dense.mean_delta > sparse.mean_delta
        assert dense.mean_rounds > sparse.mean_rounds

    def test_spectrum_overhead_bounded(self, rows):
        # Distributed assignment should stay within ~2x the centralized
        # greedy planner on these densities.
        assert all(1.0 <= r.spectrum_overhead < 2.5 for r in rows)

    def test_rounds_per_delta_reasonable(self, rows):
        # The clique-dense regime costs more than ER's ~4-5, but must
        # stay far from the pre-backoff livelock (r/Δ > 40).
        assert all(r.rounds_per_delta < 20 for r in rows)

    def test_render(self, rows):
        out = udg_channels.render(rows)
        assert "spectrum x" in out

    def test_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["udg"]) == 0
        assert "udg-channel-assignment" in capsys.readouterr().out


class TestBackoffBehavior:
    """The contention backoff that makes dense UDGs feasible."""

    def test_dense_udg_completes(self):
        # The exact configuration that livelocked without backoff.
        from repro.core.dima2ed import strong_color_arcs
        from repro.graphs.generators import unit_disk
        from repro.verify import assert_strong_arc_coloring

        g = unit_disk(40, 0.32, seed=2012)
        d = g.to_directed()
        result = strong_color_arcs(d, seed=2112)
        assert_strong_arc_coloring(d, result.colors)

    def test_backoff_state_machine(self):
        from repro.core.dima2ed import DiMa2EdProgram

        p = DiMa2EdProgram(0, [1], [1])
        assert p._backoff == 0
        # failures within the grace window don't widen anything
        p._fail_streak = p.BACKOFF_GRACE
        assert p._backoff == 1
        p._fail_streak = p.BACKOFF_GRACE + 3
        assert p._backoff == 8
        p._fail_streak = 100
        assert p._backoff == p.MAX_BACKOFF
        p._fail_streak = 0
        assert p._backoff == 0
