"""Unit tests for the per-figure experiment modules (tiny scales)."""

import pytest

from repro.experiments import (
    fig3_erdos_renyi,
    fig4_scale_free,
    fig5_small_world,
    fig6_dima2ed,
)


class TestConfigure:
    def test_fig3_grid(self):
        cells = fig3_erdos_renyi.configure(scale=1.0)
        assert len(cells) == 6  # 2 sizes x 3 degrees
        assert all(c.count == 50 for c in cells)

    def test_fig3_total_matches_paper(self):
        assert sum(c.count for c in fig3_erdos_renyi.configure(1.0)) == 300

    def test_fig4_grid(self):
        cells = fig4_scale_free.configure(scale=1.0)
        assert len(cells) == 6
        assert sum(c.count for c in cells) == 300

    def test_fig5_grid(self):
        cells = fig5_small_world.configure(scale=1.0)
        assert len(cells) == 6  # 3 sizes x sparse/dense
        assert sum(c.count for c in cells) == 300

    def test_fig5_dense_k_even_and_scaled(self):
        ks = [fig5_small_world.dense_k(n) for n in (16, 64, 256)]
        assert all(k % 2 == 0 for k in ks)
        assert ks == sorted(ks)
        assert fig5_small_world.dense_k(256) == 42

    def test_fig6_grid(self):
        cells = fig6_dima2ed.configure(scale=1.0)
        assert len(cells) == 4
        assert sum(c.count for c in cells) == 200

    def test_scaling(self):
        cells = fig3_erdos_renyi.configure(scale=0.1)
        assert all(c.count == 5 for c in cells)


class TestTinyRuns:
    """One replicate per cell: checks the full pipeline, not statistics."""

    def test_fig3_runs_and_verifies(self):
        report = fig3_erdos_renyi.run(scale=0.02, base_seed=1)
        assert len(report.records) == 6
        assert all(r.rounds > 0 for r in report.records)

    def test_fig4_runs_and_verifies(self):
        report = fig4_scale_free.run(scale=0.02, base_seed=1)
        assert len(report.records) == 6

    def test_fig5_runs_and_verifies(self):
        report = fig5_small_world.run(scale=0.02, base_seed=1)
        assert len(report.records) == 6

    def test_fig6_runs_and_verifies(self):
        report = fig6_dima2ed.run(scale=0.02, base_seed=1)
        assert len(report.records) == 4

    def test_main_prints(self, capsys):
        fig3_erdos_renyi.main(scale=0.02, base_seed=2)
        out = capsys.readouterr().out
        assert "fig3-erdos-renyi" in out
        assert "rounds vs Δ" in out
