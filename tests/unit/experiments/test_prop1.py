"""Unit tests for the Proposition 1 pairing experiment."""

from repro.experiments import prop1_pairing
from repro.graphs.generators import erdos_renyi_avg_degree


class TestMeasure:
    def test_measure_pairing_shape(self):
        g = erdos_renyi_avg_degree(30, 5.0, seed=1)
        summary = prop1_pairing.measure_pairing(g, seeds=[1, 2])
        assert summary.rounds > 0
        assert 0.0 <= summary.min_rate <= summary.mean_rate <= 1.0

    def test_deterministic(self):
        g = erdos_renyi_avg_degree(30, 5.0, seed=1)
        a = prop1_pairing.measure_pairing(g, seeds=[3])
        b = prop1_pairing.measure_pairing(g, seeds=[3])
        assert a == b


class TestRun:
    def test_families_covered(self):
        rows = prop1_pairing.run(runs_per_family=1, base_seed=4)
        assert {r.family for r in rows} == set(prop1_pairing.FAMILIES)

    def test_er_in_corridor(self):
        rows = prop1_pairing.run(runs_per_family=3, base_seed=5)
        by_family = {r.family: r for r in rows}
        er = by_family["er-n80-deg8"].summary
        assert prop1_pairing.LOWER_BOUND * 0.8 < er.mean_rate < prop1_pairing.UPPER_BOUND * 1.3

    def test_star_below_corridor(self):
        rows = prop1_pairing.run(runs_per_family=2, base_seed=6)
        by_family = {r.family: r for r in rows}
        star = by_family["star-n32"].summary
        er = by_family["er-n80-deg8"].summary
        assert star.mean_rate < er.mean_rate

    def test_render(self):
        rows = prop1_pairing.run(runs_per_family=1, base_seed=7)
        out = prop1_pairing.render(rows)
        assert "corridor" in out
        assert "star-n32" in out
