"""Unit tests for claims, ablations, baseline comparison, and the CLI."""

import math

import pytest

from repro.experiments import ablations, baselines_compare, claims
from repro.experiments.cli import build_parser, main


class TestClaims:
    @pytest.fixture(scope="class")
    def report(self):
        return claims.run(scale=0.02, base_seed=3)

    def test_constants_positive(self, report):
        assert report.edge_rounds_per_delta_mean > 0
        assert report.strong_rounds_per_delta_mean > 0

    def test_edge_constant_near_two(self, report):
        # Tiny sample, so just a sanity corridor around the paper's 2.
        assert 1.2 < report.edge_rounds_per_delta_mean < 4.0

    def test_quality_fractions_monotone(self, report):
        assert 0 <= report.typical_fraction <= report.practical_fraction <= 1

    def test_worst_case_never_hit(self, report):
        assert not report.worst_case_bound_hit

    def test_render(self, report):
        out = report.render()
        assert "rounds/Δ" in out


class TestAblations:
    def test_bias_sweep_rows(self):
        rows = ablations.sweep_invite_bias(
            biases=(0.3, 0.5), n=30, deg=4.0, count=2, base_seed=5
        )
        assert [r.label for r in rows] == ["p_invite=0.3", "p_invite=0.5"]
        assert all(r.mean_rounds > 0 for r in rows)

    def test_channel_strategies_rows(self):
        rows = ablations.compare_channel_strategies(n=20, deg=3.0, count=2)
        assert {r.label for r in rows} == {
            "channel=first_fit",
            "channel=random_window",
        }

    def test_fault_study_reliable_baseline_clean(self):
        rows = ablations.fault_injection_study(
            drop_rates=(0.0,), n=24, deg=4.0, count=3
        )
        assert all(r.failures == 0 for r in rows)
        assert all(not math.isnan(r.mean_rounds) for r in rows)

    def test_render_rows(self):
        rows = ablations.sweep_invite_bias(biases=(0.5,), n=20, deg=3.0, count=1)
        out = ablations.render_rows("t", rows)
        assert "p_invite=0.5" in out


class TestBaselinesCompare:
    def test_rows_and_ordering(self):
        rows = baselines_compare.run(n=40, deg=5.0, count=2, base_seed=6)
        names = [r.algorithm for r in rows]
        assert names[0] == "alg1-automaton"
        assert "misra-gries" in names

    def test_sequential_algorithms_have_no_rounds(self):
        rows = baselines_compare.run(n=30, deg=4.0, count=2, base_seed=7)
        by_name = {r.algorithm: r for r in rows}
        assert by_name["greedy-first-fit"].mean_rounds is None
        assert by_name["alg1-automaton"].mean_rounds is not None

    def test_misra_gries_quality(self):
        rows = baselines_compare.run(n=30, deg=4.0, count=2, base_seed=8)
        by_name = {r.algorithm: r for r in rows}
        assert by_name["misra-gries"].max_excess <= 1

    def test_render(self):
        rows = baselines_compare.run(n=24, deg=3.0, count=1, base_seed=9)
        assert "baselines-compare" in baselines_compare.render(rows)


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig3", "--scale", "0.5", "--seed", "7"])
        assert args.experiment == "fig3"
        assert args.scale == 0.5
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_main_runs_figure(self, capsys):
        code = main(["fig6", "--scale", "0.02", "--seed", "3"])
        assert code == 0
        assert "fig6" in capsys.readouterr().out

    def test_main_runs_claims(self, capsys):
        code = main(["claims", "--scale", "0.02"])
        assert code == 0
        assert "rounds/Δ" in capsys.readouterr().out
