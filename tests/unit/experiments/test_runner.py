"""Unit tests for the experiment runner and report assembly."""

import pytest

from repro.experiments.runner import (
    ExperimentReport,
    RunRecord,
    run_dima2ed_workload,
    run_edge_coloring_workload,
)
from repro.experiments.workloads import WorkloadCell, er_builder


def tiny_cells(count=2):
    return [
        WorkloadCell(
            label=f"tiny deg={deg:g}",
            builder=er_builder,
            params={"n": 24, "deg": deg},
            count=count,
        )
        for deg in (3.0, 5.0)
    ]


class TestRunRecord:
    def test_derived_fields(self):
        r = RunRecord("e", "c", 0, n=10, m=20, delta=5, rounds=11, colors=6,
                      messages=100, seed=1)
        assert r.excess_colors == 1
        assert r.rounds_per_delta == pytest.approx(2.2)

    def test_zero_delta(self):
        r = RunRecord("e", "c", 0, n=1, m=0, delta=0, rounds=0, colors=0,
                      messages=0, seed=1)
        assert r.rounds_per_delta == 0.0


class TestEdgeColoringWorkload:
    def test_record_per_graph(self):
        report = run_edge_coloring_workload("t", tiny_cells(2), base_seed=1)
        assert len(report.records) == 4
        assert {r.cell for r in report.records} == {"tiny deg=3", "tiny deg=5"}

    def test_records_populated(self):
        report = run_edge_coloring_workload("t", tiny_cells(1), base_seed=1)
        for r in report.records:
            assert r.n == 24
            assert r.rounds > 0
            assert r.colors >= r.delta >= 1
            assert r.messages > 0

    def test_deterministic(self):
        a = run_edge_coloring_workload("t", tiny_cells(1), base_seed=9)
        b = run_edge_coloring_workload("t", tiny_cells(1), base_seed=9)
        assert a.records == b.records

    def test_base_seed_changes_runs(self):
        a = run_edge_coloring_workload("t", tiny_cells(1), base_seed=1)
        b = run_edge_coloring_workload("t", tiny_cells(1), base_seed=2)
        assert a.records != b.records


class TestDima2edWorkload:
    def test_runs_on_symmetric_closure(self):
        report = run_dima2ed_workload("t", tiny_cells(1), base_seed=3)
        for r in report.records:
            assert r.m % 2 == 0  # arcs come in pairs


class TestReportRendering:
    @pytest.fixture()
    def report(self):
        return run_edge_coloring_workload("render-me", tiny_cells(2), base_seed=4)

    def test_cell_table(self, report):
        table = report.cell_table()
        assert "tiny deg=3" in table and "rounds/Δ" in table

    def test_delta_series_sorted(self, report):
        series = report.delta_series()
        assert list(series) == sorted(series)

    def test_rounds_fit(self, report):
        fit = report.rounds_fit()
        assert fit.n == len(report.records)

    def test_excess_histogram_keys(self, report):
        hist = report.excess_histogram()
        assert all(isinstance(k, int) for k in hist)
        assert sum(hist.values()) == len(report.records)

    def test_render_full(self, report):
        text = report.render()
        assert "render-me" in text
        assert "colors − Δ" in text
