"""Unit tests for the experiments CLI --save option."""

from repro.experiments.cli import main
from repro.experiments.persistence import load_report


class TestSave:
    def test_writes_txt_and_json(self, tmp_path, capsys):
        code = main(
            ["fig6", "--scale", "0.02", "--seed", "4", "--save", str(tmp_path)]
        )
        assert code == 0
        txt = tmp_path / "fig6-dima2ed-erdos-renyi.txt"
        js = tmp_path / "fig6-dima2ed-erdos-renyi.json"
        assert txt.exists() and js.exists()
        report = load_report(js)
        assert len(report.records) == 4  # 4 cells x 1 replicate
        assert report.experiment == "fig6-dima2ed-erdos-renyi"
        assert "rounds vs Δ" in txt.read_text()

    def test_save_creates_directory(self, tmp_path, capsys):
        target = tmp_path / "nested" / "dir"
        assert main(["fig3", "--scale", "0.02", "--save", str(target)]) == 0
        assert (target / "fig3-erdos-renyi.json").exists()

    def test_save_ignored_for_non_figures(self, tmp_path, capsys):
        # Non-figure experiments run normally; --save is a figure feature.
        assert main(["baselines", "--save", str(tmp_path)]) == 0
        assert list(tmp_path.iterdir()) == []
