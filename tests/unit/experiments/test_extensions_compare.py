"""Unit tests for the extensions comparison experiment."""

import pytest

from repro.experiments import extensions_compare


class TestSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return extensions_compare.run_sweep(
            cells=((40, 4.0), (40, 10.0)), count=2, base_seed=11
        )

    def test_row_per_cell(self, rows):
        assert [r.cell for r in rows] == ["n=40 deg=4", "n=40 deg=10"]

    def test_all_rounds_positive(self, rows):
        for r in rows:
            assert r.edge_coloring_rounds > 0
            assert r.matching_rounds > 0
            assert r.vertex_coloring_rounds > 0
            assert r.weighted_matching_supersteps > 0

    def test_edge_coloring_scales_with_delta(self, rows):
        low, high = rows
        assert high.mean_delta > low.mean_delta
        assert high.edge_coloring_rounds > low.edge_coloring_rounds * 1.3

    def test_vertex_coloring_delta_insensitive(self, rows):
        low, high = rows
        # log-n regime: doubling Δ must not double the rounds.
        assert high.vertex_coloring_rounds < low.vertex_coloring_rounds * 2

    def test_render(self, rows):
        out = extensions_compare.render(rows)
        assert "extensions-compare" in out
        assert "Θ(Δ)" in out


class TestCli:
    def test_cli_dispatch(self, capsys):
        from repro.experiments.cli import main

        assert main(["extensions"]) == 0
        assert "extensions-compare" in capsys.readouterr().out
