"""Unit tests for the message-complexity experiment and the ASCII scatter."""

import pytest

from repro.experiments import message_complexity
from repro.experiments.tables import render_scatter


class TestMessageComplexity:
    @pytest.fixture(scope="class")
    def n_rows(self):
        return message_complexity.run_n_sweep(
            sizes=(30, 60), deg=6.0, count=2, base_seed=3
        )

    def test_rows_per_size(self, n_rows):
        assert [r.cell for r in n_rows] == ["n=30 deg=6", "n=60 deg=6"]

    def test_model_bound_respected(self, n_rows):
        # At most 3 broadcasts per live node per round, in practice ~1.
        assert all(r.sends_per_node_round <= 3.0 for r in n_rows)
        assert all(r.sends_per_node_round > 0.2 for r in n_rows)

    def test_per_node_rate_n_independent(self, n_rows):
        a, b = n_rows
        assert abs(a.sends_per_node_round - b.sends_per_node_round) < 0.3

    def test_degree_sweep_deliveries_grow(self):
        rows = message_complexity.run_degree_sweep(
            n=60, degrees=(4.0, 12.0), count=2, base_seed=4
        )
        assert rows[1].deliveries_per_edge > rows[0].deliveries_per_edge * 1.5

    def test_render(self, n_rows):
        out = message_complexity.render("t", n_rows)
        assert "sends/node/round" in out


class TestRenderScatter:
    def test_basic_grid(self):
        out = render_scatter([0, 1, 2], [0, 1, 2], width=20, height=5)
        lines = out.splitlines()
        assert len(lines) == 5 + 3  # grid + axis + labels
        assert "·" in out

    def test_density_glyphs(self):
        out = render_scatter([1] * 10, [1] * 10, width=10, height=3)
        assert "#" in out

    def test_empty(self):
        assert render_scatter([], []) == "(no data)"

    def test_mismatch(self):
        with pytest.raises(ValueError):
            render_scatter([1], [1, 2])

    def test_constant_values(self):
        out = render_scatter([5, 5], [3, 3], width=10, height=3)
        assert "(no data)" not in out

    def test_labels_present(self):
        out = render_scatter([0, 1], [0, 1], xlabel="delta", ylabel="rounds")
        assert "delta" in out and "rounds" in out
