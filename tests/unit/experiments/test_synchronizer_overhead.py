"""Unit tests for the synchronizer-overhead experiment."""

import pytest

from repro.experiments import synchronizer_overhead


class TestRun:
    @pytest.fixture(scope="class")
    def rows(self):
        return synchronizer_overhead.run(
            n=24, degrees=(4.0,), max_delays=(1, 6), base_seed=13
        )

    def test_row_per_config(self, rows):
        assert [r.cell for r in rows] == ["deg=4 delay≤1", "deg=4 delay≤6"]

    def test_overhead_factor_delay_independent(self, rows):
        # Delays stretch time, not message counts.
        fast, slow = rows
        assert fast.protocol_messages == slow.protocol_messages
        assert fast.app_messages == slow.app_messages

    def test_time_dilation(self, rows):
        fast, slow = rows
        assert slow.ticks_per_pulse > fast.ticks_per_pulse
        # One pulse costs at least app->ack->safe = ~3 hops at delay 1.
        assert fast.ticks_per_pulse >= 2.0

    def test_overhead_grows_with_degree(self):
        rows = synchronizer_overhead.run(
            n=30, degrees=(3.0, 9.0), max_delays=(1,), base_seed=17
        )
        sparse, dense = rows
        assert dense.overhead_factor > sparse.overhead_factor

    def test_render(self, rows):
        out = synchronizer_overhead.render(rows)
        assert "overhead x" in out

    def test_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["synchronizer"]) == 0
        assert "synchronizer-overhead" in capsys.readouterr().out
