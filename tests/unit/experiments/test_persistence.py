"""Unit tests for JSON report persistence."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.persistence import (
    load_report,
    records_from_json,
    records_to_json,
    save_report,
)
from repro.experiments.runner import ExperimentReport, RunRecord


def sample_report():
    return ExperimentReport(
        experiment="sample",
        records=[
            RunRecord("sample", "cell-a", 0, n=10, m=20, delta=4, rounds=9,
                      colors=5, messages=120, seed=7),
            RunRecord("sample", "cell-a", 1, n=10, m=18, delta=5, rounds=11,
                      colors=5, messages=130, seed=8),
        ],
    )


class TestRoundTrip:
    def test_json_roundtrip(self):
        report = sample_report()
        back = records_from_json(records_to_json(report))
        assert back.experiment == report.experiment
        assert back.records == report.records

    def test_file_roundtrip(self, tmp_path):
        report = sample_report()
        path = tmp_path / "report.json"
        save_report(report, path)
        back = load_report(path)
        assert back.records == report.records

    def test_loaded_report_supports_analysis(self, tmp_path):
        path = tmp_path / "r.json"
        save_report(sample_report(), path)
        back = load_report(path)
        assert back.rounds_fit().n == 2
        assert back.excess_histogram() == {0: 1, 1: 1}

    def test_real_experiment_roundtrip(self, tmp_path):
        from repro.experiments import fig3_erdos_renyi

        report = fig3_erdos_renyi.run(scale=0.02, base_seed=9)
        path = tmp_path / "fig3.json"
        save_report(report, path)
        assert load_report(path).records == report.records


class TestValidation:
    def test_bad_json(self):
        with pytest.raises(ConfigurationError):
            records_from_json("{not json")

    def test_missing_records(self):
        with pytest.raises(ConfigurationError):
            records_from_json('{"schema": 1, "experiment": "x"}')

    def test_wrong_schema(self):
        with pytest.raises(ConfigurationError):
            records_from_json('{"schema": 99, "experiment": "x", "records": []}')

    def test_unknown_fields_rejected(self):
        text = (
            '{"schema": 1, "experiment": "x", "records": '
            '[{"bogus": 1}]}'
        )
        with pytest.raises(ConfigurationError):
            records_from_json(text)
