"""Unit tests for the bench-history store and `repro bench --compare`."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "benchmarks" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def benchlib():
    return _load("benchlib")


def _report(wall_general=1.0, wall_batched=0.2, digest="abc"):
    return {
        "bench": "engine_scaling",
        "mode": "smoke",
        "workloads": {
            "alg1-er-n1000-d8": {
                "kind": "alg1",
                "general": {
                    "wall_s": wall_general, "peak_rss_kb": 40000,
                    "rounds": 39, "supersteps": 156, "state_digest": digest,
                },
                "batched": {
                    "wall_s": wall_batched, "peak_rss_kb": 35000,
                    "rounds": 39, "supersteps": 156, "state_digest": digest,
                },
                "identical": True,
            }
        },
    }


class TestHistoryStore:
    def test_entry_extracts_tier_rows_only(self, benchlib):
        entry = benchlib.history_entry_from_report(_report())
        assert entry["schema"] == benchlib.HISTORY_SCHEMA
        tiers = entry["workloads"]["alg1-er-n1000-d8"]["tiers"]
        assert set(tiers) == {"general", "batched"}
        assert tiers["general"]["wall_s"] == 1.0
        # non-tier keys (kind, identical) must not leak into tiers
        assert "kind" not in tiers

    def test_host_fingerprint_is_stable(self, benchlib):
        a, b = benchlib.host_fingerprint(), benchlib.host_fingerprint()
        assert a == b
        assert len(a["fingerprint"]) == 12

    def test_append_and_read_round_trip(self, benchlib, tmp_path):
        path = tmp_path / "history.jsonl"
        first = benchlib.history_entry_from_report(_report())
        second = benchlib.history_entry_from_report(_report(wall_general=0.9))
        benchlib.append_bench_history(first, path)
        benchlib.append_bench_history(second, path)
        entries = benchlib.read_bench_history(path)
        assert len(entries) == 2
        assert entries[0] == first
        assert entries[1] == second

    def test_newer_schema_rejected(self, benchlib, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({"schema": 999}) + "\n")
        with pytest.raises(ValueError, match="newer"):
            benchlib.read_bench_history(path)

    def test_committed_seed_is_readable(self, benchlib):
        entries = benchlib.read_bench_history(benchlib.DEFAULT_HISTORY)
        assert entries, "seeded bench_history.jsonl must not be empty"
        assert "alg1-er-n10000-d8" in entries[-1]["workloads"]


class TestCompareEntries:
    def test_identical_entries_pass(self, benchlib):
        entry = benchlib.history_entry_from_report(_report())
        result = benchlib.compare_entries(entry, copy.deepcopy(entry))
        assert result["ok"] is True
        assert result["same_host"] is True
        assert not any(v["verdict"] == "regression" for v in result["verdicts"])

    def test_injected_2x_slowdown_is_flagged(self, benchlib):
        baseline = benchlib.history_entry_from_report(_report())
        slow = benchlib.history_entry_from_report(
            _report(wall_general=2.0, wall_batched=0.4)
        )
        result = benchlib.compare_entries(slow, baseline)
        assert result["ok"] is False
        walls = [v for v in result["verdicts"] if v["kind"] == "wall"]
        assert any(v["verdict"] == "regression" for v in walls)
        # the slowdown was uniform, so the speedup ratio did NOT regress
        speedups = [v for v in result["verdicts"] if v["kind"] == "speedup"]
        assert all(v["verdict"] == "ok" for v in speedups)

    def test_cross_host_skips_wall_but_gates_speedup(self, benchlib):
        baseline = benchlib.history_entry_from_report(
            _report(), host={"fingerprint": "other-host"}
        )
        # batched tier lost its edge: speedup 5x -> 1.25x
        current = benchlib.history_entry_from_report(_report(wall_batched=0.8))
        result = benchlib.compare_entries(current, baseline)
        assert result["same_host"] is False
        walls = [v for v in result["verdicts"] if v["kind"] == "wall"]
        assert walls and all(v["verdict"] == "skipped" for v in walls)
        speedups = [v for v in result["verdicts"] if v["kind"] == "speedup"]
        assert any(v["verdict"] == "regression" for v in speedups)
        assert result["ok"] is False

    def test_digest_change_is_informational(self, benchlib):
        baseline = benchlib.history_entry_from_report(_report(digest="abc"))
        current = benchlib.history_entry_from_report(_report(digest="xyz"))
        result = benchlib.compare_entries(current, baseline)
        assert result["ok"] is True  # digest drift alone never fails
        assert any(v["verdict"] == "digest-changed" for v in result["verdicts"])

    def test_no_shared_workloads(self, benchlib):
        entry = benchlib.history_entry_from_report(_report())
        empty = benchlib.history_entry_from_report({"workloads": {}})
        result = benchlib.compare_entries(entry, empty)
        assert result["compared"] == 0
        assert result["ok"] is False

    def test_format_compare_verdict_lines(self, benchlib):
        baseline = benchlib.history_entry_from_report(_report())
        slow = benchlib.history_entry_from_report(
            _report(wall_general=2.0, wall_batched=0.4)
        )
        text = benchlib.format_compare(benchlib.compare_entries(slow, baseline))
        assert "FAIL" in text and "[regression]" in text
        ok = benchlib.format_compare(
            benchlib.compare_entries(baseline, copy.deepcopy(baseline))
        )
        assert "PASS" in ok


class TestBenchScriptWiring:
    def test_load_compare_baseline_from_report(self):
        bench = _load("bench_engine_scaling")
        entry = bench._load_compare_baseline(REPO_ROOT / "BENCH_engine.json")
        assert entry is not None
        assert "alg1-er-n1000-d8" in entry["workloads"]

    def test_load_compare_baseline_from_history(self):
        bench = _load("bench_engine_scaling")
        entry = bench._load_compare_baseline(
            REPO_ROOT / "benchmarks" / "out" / "bench_history.jsonl"
        )
        assert entry is not None
        assert entry["schema"] == 1

    def test_parser_accepts_history_and_compare(self):
        bench = _load("bench_engine_scaling")
        # argparse wiring only — the sweep itself is exercised in CI
        import inspect

        src = inspect.getsource(bench.main)
        assert "--history" in src and "--compare" in src
