"""Unit tests for the sequential strong arc coloring baseline."""

import pytest

from repro.baselines import greedy_strong_arc_coloring
from repro.graphs.adjacency import DiGraph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_avg_degree,
    path_graph,
)
from repro.verify import assert_strong_arc_coloring


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_er_valid_and_complete(self, seed):
        d = erdos_renyi_avg_degree(30, 4.0, seed=seed).to_directed()
        colors = greedy_strong_arc_coloring(d)
        assert_strong_arc_coloring(d, colors)
        assert len(colors) == d.num_arcs

    def test_p3_uses_four(self):
        d = path_graph(3).to_directed()
        colors = greedy_strong_arc_coloring(d)
        assert len(set(colors.values())) == 4

    def test_triangle_uses_six(self):
        d = complete_graph(3).to_directed()
        colors = greedy_strong_arc_coloring(d)
        assert len(set(colors.values())) == 6

    def test_empty(self):
        assert greedy_strong_arc_coloring(DiGraph()) == {}

    def test_asymmetric_digraph_supported(self):
        # The sequential baseline does not require symmetry.
        d = DiGraph([(0, 1), (1, 2), (2, 3)])
        colors = greedy_strong_arc_coloring(d)
        assert_strong_arc_coloring(d, colors)

    def test_explicit_order(self):
        d = path_graph(2).to_directed()
        colors = greedy_strong_arc_coloring(d, order=[(1, 0), (0, 1)])
        assert colors[(1, 0)] == 0
        assert colors[(0, 1)] == 1


class TestQualityAnchor:
    def test_beats_or_matches_distributed(self):
        # Greedy with global knowledge should never need more channels
        # than the distributed algorithm... on average.  Check a mild
        # per-instance bound instead (DiMa2Ed can win on some seeds).
        from repro.core.dima2ed import strong_color_arcs

        d = erdos_renyi_avg_degree(30, 4.0, seed=7).to_directed()
        greedy = len(set(greedy_strong_arc_coloring(d).values()))
        distributed = strong_color_arcs(d, seed=7).num_colors
        assert greedy <= distributed * 2

    def test_cycle_channels_bounded(self):
        d = cycle_graph(12).to_directed()
        colors = greedy_strong_arc_coloring(d)
        # C12 arcs conflict within a window; greedy should stay small.
        assert len(set(colors.values())) <= 10
