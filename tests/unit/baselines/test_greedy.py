"""Unit tests for the greedy first-fit edge coloring baseline."""

import pytest

from repro.baselines import greedy_edge_coloring
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_avg_degree,
    path_graph,
    star_graph,
)
from repro.graphs.properties import max_degree
from repro.verify import assert_proper_edge_coloring


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_proper_and_complete(self, seed):
        g = erdos_renyi_avg_degree(50, 7.0, seed=seed)
        colors = greedy_edge_coloring(g)
        assert_proper_edge_coloring(g, colors)
        assert len(colors) == g.num_edges

    def test_bound(self):
        for seed in range(6):
            g = erdos_renyi_avg_degree(40, 6.0, seed=seed)
            colors = greedy_edge_coloring(g)
            assert len(set(colors.values())) <= 2 * max_degree(g) - 1

    def test_path_two_colors(self):
        colors = greedy_edge_coloring(path_graph(10))
        assert len(set(colors.values())) == 2

    def test_star_exactly_delta(self):
        colors = greedy_edge_coloring(star_graph(8))
        assert sorted(colors.values()) == list(range(8))

    def test_empty(self):
        from repro.graphs.adjacency import Graph

        assert greedy_edge_coloring(Graph()) == {}


class TestOrdering:
    def test_explicit_order_respected(self):
        g = cycle_graph(4)
        colors = greedy_edge_coloring(g, order=[(0, 1), (2, 3), (1, 2), (0, 3)])
        # first two edges are disjoint -> both get color 0
        assert colors[(0, 1)] == 0 and colors[(2, 3)] == 0

    def test_order_accepts_unsorted_pairs(self):
        g = path_graph(3)
        colors = greedy_edge_coloring(g, order=[(1, 0), (2, 1)])
        assert_proper_edge_coloring(g, colors)

    def test_shuffle_seed_deterministic(self):
        g = erdos_renyi_avg_degree(30, 5.0, seed=1)
        a = greedy_edge_coloring(g, shuffle_seed=5)
        b = greedy_edge_coloring(g, shuffle_seed=5)
        assert a == b

    def test_shuffles_differ(self):
        g = complete_graph(8)
        a = greedy_edge_coloring(g, shuffle_seed=1)
        b = greedy_edge_coloring(g, shuffle_seed=2)
        assert a != b  # some edge gets a different color
