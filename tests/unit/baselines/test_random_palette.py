"""Unit tests for the random-palette distributed baseline."""

import pytest

from repro.baselines import random_palette_edge_coloring
from repro.errors import GeneratorError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi_avg_degree,
    path_graph,
    star_graph,
)
from repro.graphs.properties import max_degree
from repro.verify import assert_proper_edge_coloring


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_proper_and_complete(self, seed):
        g = erdos_renyi_avg_degree(40, 6.0, seed=seed)
        result = random_palette_edge_coloring(g, seed=seed)
        assert_proper_edge_coloring(g, result.colors)
        assert len(result.colors) == g.num_edges

    def test_palette_respected(self):
        g = complete_graph(8)
        result = random_palette_edge_coloring(g, seed=1)
        assert all(0 <= c < result.palette_size for c in result.colors.values())
        assert result.palette_size == 2 * max_degree(g)

    def test_star(self):
        result = random_palette_edge_coloring(star_graph(6), seed=2)
        assert len(set(result.colors.values())) == 6

    def test_empty(self):
        result = random_palette_edge_coloring(Graph(), seed=1)
        assert result.colors == {}
        assert result.rounds == 0

    def test_determinism(self):
        g = erdos_renyi_avg_degree(30, 5.0, seed=3)
        a = random_palette_edge_coloring(g, seed=9)
        b = random_palette_edge_coloring(g, seed=9)
        assert a.colors == b.colors and a.rounds == b.rounds


class TestRoundBehavior:
    def test_few_rounds_on_sparse(self):
        g = erdos_renyi_avg_degree(100, 4.0, seed=4)
        result = random_palette_edge_coloring(g, seed=4)
        # O(log n)-ish: far below the Θ(Δ) of Algorithm 1
        assert result.rounds <= 15

    def test_single_edge_one_round(self):
        result = random_palette_edge_coloring(path_graph(2), seed=1)
        assert result.rounds == 1


class TestValidation:
    def test_infeasible_palette_rejected(self):
        g = complete_graph(6)
        with pytest.raises(GeneratorError):
            random_palette_edge_coloring(g, seed=1, palette_factor=1.0)

    def test_tight_feasible_palette(self):
        g = complete_graph(5)  # Δ=4, needs ≥ 7
        result = random_palette_edge_coloring(
            g, seed=1, palette_factor=7 / 4, max_rounds=5000
        )
        assert_proper_edge_coloring(g, result.colors)
