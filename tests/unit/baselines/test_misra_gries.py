"""Unit tests for the Misra–Gries Δ+1 edge coloring."""

import pytest

from repro.baselines import misra_gries_edge_coloring
from repro.graphs.adjacency import Graph
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_avg_degree,
    path_graph,
    random_regular,
    scale_free,
    small_world,
    star_graph,
)
from repro.graphs.properties import max_degree
from repro.verify import assert_proper_edge_coloring


def colors_used(coloring):
    return len(set(coloring.values()))


class TestVizingBound:
    @pytest.mark.parametrize("seed", range(12))
    def test_er_graphs(self, seed):
        g = erdos_renyi_avg_degree(50, 7.0, seed=seed)
        coloring = misra_gries_edge_coloring(g)
        assert_proper_edge_coloring(g, coloring)
        assert colors_used(coloring) <= max_degree(g) + 1

    @pytest.mark.parametrize("seed", range(6))
    def test_small_world(self, seed):
        g = small_world(36, 6, 0.4, seed=seed)
        coloring = misra_gries_edge_coloring(g)
        assert_proper_edge_coloring(g, coloring)
        assert colors_used(coloring) <= max_degree(g) + 1

    @pytest.mark.parametrize("seed", range(6))
    def test_scale_free(self, seed):
        g = scale_free(60, 3, power=1.3, seed=seed)
        coloring = misra_gries_edge_coloring(g)
        assert_proper_edge_coloring(g, coloring)
        assert colors_used(coloring) <= max_degree(g) + 1

    @pytest.mark.parametrize("seed", range(4))
    def test_regular(self, seed):
        g = random_regular(24, 5, seed=seed)
        coloring = misra_gries_edge_coloring(g)
        assert_proper_edge_coloring(g, coloring)
        assert colors_used(coloring) <= 6


class TestExactFamilies:
    def test_even_cycle_at_most_three(self):
        # The algorithm promises Δ+1, not χ'; its Kempe recolorings may
        # introduce the extra color even where χ' = Δ.
        coloring = misra_gries_edge_coloring(cycle_graph(8))
        assert 2 <= colors_used(coloring) <= 3

    def test_odd_cycle_three(self):
        coloring = misra_gries_edge_coloring(cycle_graph(7))
        assert colors_used(coloring) == 3

    def test_path_at_most_three(self):
        coloring = misra_gries_edge_coloring(path_graph(9))
        assert 2 <= colors_used(coloring) <= 3

    def test_star(self):
        coloring = misra_gries_edge_coloring(star_graph(7))
        assert colors_used(coloring) == 7

    def test_bipartite_class_one(self):
        # König: bipartite graphs need exactly Δ.
        g = complete_bipartite_graph(4, 6)
        coloring = misra_gries_edge_coloring(g)
        assert_proper_edge_coloring(g, coloring)
        assert colors_used(coloring) <= 6 + 1

    @pytest.mark.parametrize("n", [4, 5, 6, 7, 8, 9])
    def test_complete_graphs(self, n):
        g = complete_graph(n)
        coloring = misra_gries_edge_coloring(g)
        assert_proper_edge_coloring(g, coloring)
        assert colors_used(coloring) <= n  # Δ+1 = n

    def test_empty(self):
        assert misra_gries_edge_coloring(Graph()) == {}

    def test_single_edge(self):
        assert misra_gries_edge_coloring(path_graph(2)) == {(0, 1): 0}


class TestStress:
    def test_many_random_graphs(self):
        # Broad randomized sweep: the Kempe-chain machinery is subtle
        # enough to deserve volume.
        for seed in range(40):
            g = erdos_renyi_avg_degree(30, 5.0, seed=1000 + seed)
            coloring = misra_gries_edge_coloring(g)
            assert_proper_edge_coloring(g, coloring)
            assert colors_used(coloring) <= max_degree(g) + 1
