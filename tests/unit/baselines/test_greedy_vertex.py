"""Unit tests for the greedy vertex-coloring baseline."""

import pytest

from repro.baselines.greedy_vertex import greedy_vertex_coloring
from repro.graphs.adjacency import Graph
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_avg_degree,
    path_graph,
)
from repro.graphs.properties import max_degree
from repro.verify.vertex_coloring import assert_proper_vertex_coloring


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_proper_within_bound(self, seed):
        g = erdos_renyi_avg_degree(50, 6.0, seed=seed)
        colors = greedy_vertex_coloring(g)
        assert_proper_vertex_coloring(g, colors)
        assert len(set(colors.values())) <= max_degree(g) + 1

    def test_path_two_colors(self):
        colors = greedy_vertex_coloring(path_graph(8))
        assert len(set(colors.values())) == 2

    def test_even_cycle_two(self):
        colors = greedy_vertex_coloring(cycle_graph(8))
        assert len(set(colors.values())) == 2

    def test_odd_cycle_three(self):
        colors = greedy_vertex_coloring(cycle_graph(7))
        assert len(set(colors.values())) == 3

    def test_complete(self):
        colors = greedy_vertex_coloring(complete_graph(5))
        assert sorted(colors.values()) == [0, 1, 2, 3, 4]

    def test_bipartite_ascending_order_two_colors(self):
        # K_{a,b} with part-major ordering greedily 2-colors.
        g = complete_bipartite_graph(4, 4)
        colors = greedy_vertex_coloring(g)
        assert len(set(colors.values())) == 2

    def test_empty(self):
        assert greedy_vertex_coloring(Graph()) == {}


class TestOrdering:
    def test_explicit_order(self):
        g = path_graph(3)
        colors = greedy_vertex_coloring(g, order=[1, 0, 2])
        assert colors[1] == 0 and colors[0] == 1 and colors[2] == 1

    def test_shuffle_deterministic(self):
        g = erdos_renyi_avg_degree(30, 4.0, seed=2)
        a = greedy_vertex_coloring(g, shuffle_seed=5)
        b = greedy_vertex_coloring(g, shuffle_seed=5)
        assert a == b
