"""Unit tests for run metrics accounting."""

from repro.runtime.metrics import RunMetrics


class TestCounters:
    def test_initial_state(self):
        m = RunMetrics()
        assert m.supersteps == 0
        assert m.messages_sent == 0
        assert m.as_dict()["messages_delivered"] == 0

    def test_record_send_and_delivery(self):
        m = RunMetrics()
        m.record_send()
        m.record_delivery(5)
        m.record_delivery(3)
        assert m.messages_sent == 1
        assert m.messages_delivered == 2
        assert m.words_delivered == 8

    def test_record_drop(self):
        m = RunMetrics()
        m.record_drop()
        assert m.messages_dropped == 1

    def test_begin_superstep_tracks_live_nodes(self):
        m = RunMetrics()
        m.begin_superstep(10)
        m.begin_superstep(7)
        assert m.supersteps == 2
        assert m.live_nodes_per_superstep == [10, 7]

    def test_as_dict_keys(self):
        keys = set(RunMetrics().as_dict())
        assert keys == {
            "supersteps",
            "messages_sent",
            "messages_delivered",
            "messages_dropped",
            "words_delivered",
            "messages_discarded_halted",
            "messages_lost_to_crash",
            "messages_duplicated",
            "retransmissions",
            "transport_frames",
            "transport_duplicates_dropped",
            "transport_probes",
        }

    def test_record_discard_halted(self):
        m = RunMetrics()
        m.record_discard_halted()
        m.record_discard_halted()
        assert m.messages_discarded_halted == 2


class TestSummary:
    def test_summary_lists_every_engine_counter(self):
        m = RunMetrics(messages_sent=3, messages_discarded_halted=1)
        text = m.summary()
        assert "messages_sent: 3" in text
        assert "messages_discarded_halted: 1" in text

    def test_summary_hides_idle_transport_counters(self):
        assert "transport_frames" not in RunMetrics().summary()

    def test_summary_shows_transport_counters_when_active(self):
        m = RunMetrics(transport_frames=10, retransmissions=2)
        text = m.summary()
        assert "transport_frames: 10" in text
        assert "retransmissions: 2" in text

    def test_live_node_peak_and_final(self):
        m = RunMetrics()
        for live in (10, 10, 7, 4):
            m.begin_superstep(live)
        assert m.live_nodes_peak == 10
        assert m.live_nodes_final == 4
        text = m.summary()
        assert "live_nodes_peak: 10" in text
        assert "live_nodes_final: 4" in text

    def test_live_node_lines_absent_without_trace(self):
        assert "live_nodes_peak" not in RunMetrics().summary()
        assert RunMetrics().live_nodes_peak == 0
        assert RunMetrics().live_nodes_final == 0


class TestReport:
    def test_report_without_profile_equals_summary(self):
        m = RunMetrics(messages_sent=2)
        assert m.report() == m.summary()

    def test_report_renders_phase_profile(self):
        m = RunMetrics()
        m.phase_seconds = {"compute": 3.0, "delivery": 1.0}
        text = m.report()
        assert "phase profile:" in text
        assert "compute: 3.0000s (75.0%)" in text
        assert "delivery: 1.0000s (25.0%)" in text
        # sorted descending by time
        assert text.index("compute:") < text.index("delivery:")


class TestAggregation:
    def test_add(self):
        a = RunMetrics(supersteps=2, messages_sent=5, messages_delivered=9)
        a.live_nodes_per_superstep = [3, 2]
        b = RunMetrics(supersteps=1, messages_sent=1, words_delivered=4)
        b.live_nodes_per_superstep = [1]
        c = a + b
        assert c.supersteps == 3
        assert c.messages_sent == 6
        assert c.messages_delivered == 9
        assert c.words_delivered == 4
        assert c.live_nodes_per_superstep == [3, 2, 1]

    def test_add_merges_phase_seconds(self):
        a = RunMetrics()
        a.phase_seconds = {"compute": 1.0, "delivery": 0.5}
        b = RunMetrics()
        b.phase_seconds = {"compute": 2.0, "model_check": 0.25}
        c = a + b
        assert c.phase_seconds == {
            "compute": 3.0,
            "delivery": 0.5,
            "model_check": 0.25,
        }

    def test_add_wrong_type(self):
        try:
            RunMetrics() + 3
        except TypeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected TypeError")


class TestToDict:
    def test_round_trips_through_json(self):
        import json

        m = RunMetrics(messages_sent=4, messages_delivered=7, words_delivered=21)
        m.begin_superstep(3)
        m.begin_superstep(2)
        dumped = json.dumps(m.to_dict())
        back = json.loads(dumped)
        assert back["messages_sent"] == 4
        assert back["messages_delivered"] == 7
        assert back["live_nodes_per_superstep"] == [3, 2]

    def test_includes_every_summary_counter(self):
        d = RunMetrics().to_dict()
        assert set(RunMetrics().as_dict()) <= set(d)
        assert "live_nodes_per_superstep" in d

    def test_trace_is_a_copy(self):
        m = RunMetrics()
        m.begin_superstep(5)
        d = m.to_dict()
        d["live_nodes_per_superstep"].append(99)
        assert m.live_nodes_per_superstep == [5]
