"""Unit tests for run metrics accounting."""

from repro.runtime.metrics import RunMetrics


class TestCounters:
    def test_initial_state(self):
        m = RunMetrics()
        assert m.supersteps == 0
        assert m.messages_sent == 0
        assert m.as_dict()["messages_delivered"] == 0

    def test_record_send_and_delivery(self):
        m = RunMetrics()
        m.record_send()
        m.record_delivery(5)
        m.record_delivery(3)
        assert m.messages_sent == 1
        assert m.messages_delivered == 2
        assert m.words_delivered == 8

    def test_record_drop(self):
        m = RunMetrics()
        m.record_drop()
        assert m.messages_dropped == 1

    def test_begin_superstep_tracks_live_nodes(self):
        m = RunMetrics()
        m.begin_superstep(10)
        m.begin_superstep(7)
        assert m.supersteps == 2
        assert m.live_nodes_per_superstep == [10, 7]

    def test_as_dict_keys(self):
        keys = set(RunMetrics().as_dict())
        assert keys == {
            "supersteps",
            "messages_sent",
            "messages_delivered",
            "messages_dropped",
            "words_delivered",
        }


class TestAggregation:
    def test_add(self):
        a = RunMetrics(supersteps=2, messages_sent=5, messages_delivered=9)
        a.live_nodes_per_superstep = [3, 2]
        b = RunMetrics(supersteps=1, messages_sent=1, words_delivered=4)
        b.live_nodes_per_superstep = [1]
        c = a + b
        assert c.supersteps == 3
        assert c.messages_sent == 6
        assert c.messages_delivered == 9
        assert c.words_delivered == 4
        assert c.live_nodes_per_superstep == [3, 2, 1]

    def test_add_wrong_type(self):
        try:
            RunMetrics() + 3
        except TypeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected TypeError")
