"""``Message.size`` memoization across payload types.

The delivery hot loop calls ``size()`` once per copy, so the word count
for a payload *type* is classified once and cached in
``_WORDS_BY_TYPE`` — except for variable-length containers, whose size
depends on ``len`` and must be recomputed per message.
"""

from dataclasses import dataclass

from repro.core.messages import Invite, Reply, Report
from repro.runtime.message import _WORDS_BY_TYPE, Message


def test_dataclass_payload_sizes_are_fixed_by_field_count():
    invite = Message(0, -1, Invite(sender=0, target=1, color=2))
    reply = Message(1, -1, Reply(sender=1, target=0, color=2))
    report = Message(0, -1, Report(sender=0, colors=(1,), removed=(1,)))
    assert invite.size() == 5
    assert reply.size() == 5
    assert report.size() == 7


def test_dataclass_classification_is_cached_by_type():
    msg = Message(0, 1, Invite(sender=0, target=1, color=2))
    msg.size()
    assert _WORDS_BY_TYPE[Invite] == 5
    # A second message with a *different* Invite hits the cache and
    # agrees (the count depends only on the type's field count).
    assert Message(3, 4, Invite(sender=3, target=4, color=9)).size() == 5


def test_fresh_dataclass_type_is_classified_once():
    @dataclass(frozen=True)
    class Ping:
        a: int
        b: int
        c: int
        d: int

    assert Ping not in _WORDS_BY_TYPE
    assert Message(0, 1, Ping(1, 2, 3, 4)).size() == 6
    assert _WORDS_BY_TYPE[Ping] == 6


def test_container_payloads_stay_length_dependent():
    assert Message(0, 1, (1, 2, 3)).size() == 5
    assert Message(0, 1, ()).size() == 2
    assert Message(0, 1, [7]).size() == 3
    assert Message(0, 1, frozenset({1, 2})).size() == 4
    # Containers are marked uncacheable (None), not given a fixed size.
    assert _WORDS_BY_TYPE[tuple] is None
    assert _WORDS_BY_TYPE[list] is None


def test_none_and_scalar_payloads():
    assert Message(0, 1, None).size() == 2
    assert Message(0, 1, 42).size() == 3
    assert Message(0, 1, "hi").size() == 3
    assert _WORDS_BY_TYPE[int] == 3
