"""Unit tests for the asynchronous engine and its α-synchronizer."""

from typing import Sequence

import pytest

from repro.errors import ConfigurationError, GraphError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.runtime.async_engine import AsyncEngine
from repro.runtime.engine import SynchronousEngine
from repro.runtime.message import Message
from repro.runtime.node import Context, NodeProgram


class EchoCount(NodeProgram):
    """Broadcasts for k pulses, tallying everything heard per pulse."""

    def __init__(self, node_id: int, k: int = 4):
        self.node_id = node_id
        self.k = k
        self.heard = []

    def on_superstep(self, ctx: Context, inbox: Sequence[Message]):
        self.heard.append([(m.sender, m.payload) for m in inbox])
        if ctx.superstep < self.k:
            ctx.broadcast((ctx.superstep, self.node_id))
        else:
            self.halt()


class HaltWithLastWords(NodeProgram):
    """Node 0 sends a farewell and halts in the same pulse; others listen."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.farewells = []

    def on_superstep(self, ctx: Context, inbox: Sequence[Message]):
        self.farewells.extend(m.payload for m in inbox if m.payload == "bye")
        if self.node_id == 0:
            ctx.broadcast("bye")
            self.halt()
        elif ctx.superstep >= 2:
            self.halt()


class TestPulseSemantics:
    def test_pulse_aligned_delivery(self):
        run = AsyncEngine(path_graph(2), EchoCount, seed=1, max_delay=5).run()
        p0, p1 = run.programs
        # pulse 0 hears nothing; pulse p hears the neighbor's pulse p-1.
        assert p0.heard[0] == []
        for pulse in range(1, 4):
            assert p0.heard[pulse] == [(1, (pulse - 1, 1))]
            assert p1.heard[pulse] == [(0, (pulse - 1, 0))]

    def test_inbox_sorted_by_sender(self):
        run = AsyncEngine(star_graph(4), EchoCount, seed=2, max_delay=6).run()
        hub = run.programs[0]
        for pulse_msgs in hub.heard[1:]:
            senders = [s for s, _ in pulse_msgs]
            assert senders == sorted(senders)

    def test_last_words_not_lost(self):
        # The halt notice must not outrun the farewell broadcast.
        for seed in range(5):
            run = AsyncEngine(
                star_graph(3), HaltWithLastWords, seed=seed, max_delay=8
            ).run()
            assert run.completed
            for leaf in run.programs[1:]:
                assert leaf.farewells == ["bye"]

    def test_completion_and_pulse_count(self):
        run = AsyncEngine(cycle_graph(5), EchoCount, seed=3, max_delay=3).run()
        assert run.completed
        assert run.pulses == 5  # supersteps 0..4
        assert run.ticks > 0

    def test_halt_in_on_init(self):
        class Immediate(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_init(self, ctx):
                self.halt()

            def on_superstep(self, ctx, inbox):  # pragma: no cover
                raise AssertionError

        run = AsyncEngine(path_graph(3), Immediate, seed=1).run()
        assert run.completed
        assert run.pulses == 0


class TestEquivalenceWithSync:
    @pytest.mark.parametrize("max_delay", [1, 3, 9])
    def test_bit_identical_state(self, max_delay):
        g = cycle_graph(8)
        seq = SynchronousEngine(g, EchoCount, seed=11).run()
        asy = AsyncEngine(g, EchoCount, seed=11, max_delay=max_delay).run()
        assert [p.heard for p in asy.programs] == [p.heard for p in seq.programs]

    def test_app_metrics_match(self):
        g = star_graph(5)
        seq = SynchronousEngine(g, EchoCount, seed=4).run()
        asy = AsyncEngine(g, EchoCount, seed=4, max_delay=4).run()
        assert asy.metrics.messages_sent == seq.metrics.messages_sent
        assert asy.metrics.messages_delivered == seq.metrics.messages_delivered
        assert asy.metrics.words_delivered == seq.metrics.words_delivered

    def test_protocol_overhead_counted(self):
        asy = AsyncEngine(path_graph(3), EchoCount, seed=5, max_delay=2).run()
        # Acks (1 per app copy) + safety votes make overhead > app traffic.
        assert asy.protocol_messages > asy.metrics.messages_sent

    def test_delay_determinism(self):
        g = cycle_graph(6)
        a = AsyncEngine(g, EchoCount, seed=6, max_delay=7).run()
        b = AsyncEngine(g, EchoCount, seed=6, max_delay=7).run()
        assert a.ticks == b.ticks
        assert a.protocol_messages == b.protocol_messages

    def test_longer_delays_stretch_time_only(self):
        g = cycle_graph(6)
        fast = AsyncEngine(g, EchoCount, seed=7, max_delay=1).run()
        slow = AsyncEngine(g, EchoCount, seed=7, max_delay=10).run()
        assert slow.ticks > fast.ticks
        assert [p.heard for p in slow.programs] == [p.heard for p in fast.programs]


class TestValidation:
    def test_bad_delay(self):
        with pytest.raises(ConfigurationError):
            AsyncEngine(path_graph(2), EchoCount, max_delay=0)

    def test_noncontiguous_rejected(self):
        with pytest.raises(GraphError):
            AsyncEngine(Graph([(3, 5)]), EchoCount)

    def test_pulse_budget(self):
        class Forever(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_superstep(self, ctx, inbox):
                ctx.broadcast("x")

        run = AsyncEngine(path_graph(2), Forever, seed=1, max_pulses=6).run()
        assert not run.completed
        assert run.pulses == 6
