"""Unit tests for the observability layer (sinks, telemetry, profiler)."""

import json

import pytest

from repro.core.edge_coloring import EdgeColoringProgram, color_edges
from repro.errors import ConfigurationError
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.runtime.engine import SynchronousEngine
from repro.runtime.observe import (
    AutomatonTelemetry,
    JsonlSink,
    NullSink,
    PhaseProfiler,
    RingBufferSink,
    iter_jsonl_trace,
    read_jsonl_trace,
)
from repro.runtime.trace import EventTracer, TraceEvent


class TestNullSink:
    def test_counts_and_discards(self):
        sink = NullSink()
        for i in range(5):
            sink.emit(i, 0, "e", {})
        assert sink.emitted == 5

    def test_context_manager(self):
        with NullSink() as sink:
            sink.emit(0, 0, "e", {})
        assert sink.emitted == 1


class TestRingBufferSink:
    def test_eviction_and_dropped(self):
        sink = RingBufferSink(capacity=3)
        for i in range(8):
            sink.emit(i, 0, f"e{i}", {})
        assert len(sink) == 3
        assert [e.kind for e in sink] == ["e5", "e6", "e7"]
        assert sink.dropped == 5

    def test_unbounded(self):
        sink = RingBufferSink()
        for i in range(50):
            sink.emit(i, 0, "e", {})
        assert len(sink) == 50
        assert sink.dropped == 0

    def test_capacity_zero_counts_everything_dropped(self):
        sink = RingBufferSink(capacity=0)
        for i in range(4):
            sink.emit(i, 0, "e", {})
        assert len(sink) == 0
        assert sink.dropped == 4

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            RingBufferSink(capacity=-1)

    def test_clear(self):
        sink = RingBufferSink(capacity=1)
        sink.emit(0, 0, "a", {})
        sink.emit(1, 0, "b", {})
        sink.clear()
        assert len(sink) == 0
        assert sink.dropped == 0

    def test_data_copied(self):
        sink = RingBufferSink()
        data = {"x": 1}
        sink.emit(0, 0, "k", data)
        data["x"] = 2
        assert next(iter(sink)).data == {"x": 1}


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(0, 3, "invite", {"target": 5, "color": 2})
            sink.emit(1, 5, "accept", {"inviter": 3})
        events = read_jsonl_trace(path)
        assert events == [
            TraceEvent(0, 3, "invite", {"target": 5, "color": 2}),
            TraceEvent(1, 5, "accept", {"inviter": 3}),
        ]

    def test_buffering_flushes_on_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, buffer_size=1000)
        sink.emit(0, 0, "e", {})
        # Lazily opened + buffered: nothing on disk yet.
        assert not path.exists()
        sink.close()
        assert len(read_jsonl_trace(path)) == 1

    def test_buffer_size_triggers_write(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, buffer_size=2)
        sink.emit(0, 0, "a", {})
        sink.emit(1, 0, "b", {})
        assert path.exists()
        sink.close()
        assert len(read_jsonl_trace(path)) == 2

    def test_never_touches_disk_unused(self, tmp_path):
        path = tmp_path / "never.jsonl"
        JsonlSink(path).close()
        assert not path.exists()

    def test_valid_jsonl_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(2, 7, "kind", {"a": [1, 2]})
        (line,) = path.read_text().strip().splitlines()
        assert json.loads(line) == {
            "superstep": 2,
            "node": 7,
            "kind": "kind",
            "data": {"a": [1, 2]},
        }

    def test_iter_streams(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for i in range(10):
                sink.emit(i, i, "e", {})
        assert sum(1 for _ in iter_jsonl_trace(path)) == 10

    def test_bad_buffer_size_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JsonlSink(tmp_path / "x.jsonl", buffer_size=0)


@pytest.fixture(scope="module")
def er_graph():
    return erdos_renyi_avg_degree(40, 5.0, seed=2)


class TestAutomatonTelemetry:
    def test_histogram_totals_equal_live_counts(self, er_graph):
        telemetry = AutomatonTelemetry()
        result = color_edges(er_graph, seed=3, telemetry=telemetry)
        live = result.metrics.live_nodes_per_superstep
        assert telemetry.supersteps == result.metrics.supersteps == len(live)
        for hist, count in zip(telemetry.state_histograms, live):
            assert sum(hist.values()) == count

    def test_convergence_reaches_one(self, er_graph):
        telemetry = AutomatonTelemetry()
        color_edges(er_graph, seed=3, telemetry=telemetry)
        fractions = telemetry.colored_fraction()
        assert fractions == sorted(fractions)  # monotone without recovery
        assert fractions[-1] == pytest.approx(1.0)

    def test_transitions_conserve_observations(self, er_graph):
        telemetry = AutomatonTelemetry()
        result = color_edges(er_graph, seed=3, telemetry=telemetry)
        observed = sum(
            sum(row.values()) for row in telemetry.transitions.values()
        )
        assert observed == sum(result.metrics.live_nodes_per_superstep)

    def test_states_are_automaton_letters(self, er_graph):
        telemetry = AutomatonTelemetry()
        color_edges(er_graph, seed=3, telemetry=telemetry)
        seen = set(telemetry.state_totals())
        assert seen <= set("CILRWUED")
        assert "D" in seen  # every node eventually halts

    def test_stateless_programs_bucket_unknown(self):
        from repro.runtime.message import Message  # noqa: F401
        from repro.runtime.node import NodeProgram

        class OneShot(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_superstep(self, ctx, inbox):
                self.halt()

        g = erdos_renyi_avg_degree(10, 2.0, seed=1)
        telemetry = AutomatonTelemetry()
        SynchronousEngine(g, OneShot, seed=0, telemetry=telemetry).run()
        assert set(telemetry.state_totals()) == {"?"}
        assert sum(telemetry.state_totals().values()) == 10

    def test_merge_matches_monolithic(self, er_graph):
        whole = AutomatonTelemetry()
        result = color_edges(er_graph, seed=5, telemetry=whole)
        assert result.metrics.supersteps == whole.supersteps
        # Rebuild from two halves merged: histograms/transitions add up.
        merged = AutomatonTelemetry()
        merged.merge(whole)
        empty = AutomatonTelemetry()
        merged.merge(empty)
        assert merged.to_dict() == whole.to_dict()

    def test_compact_dict_decimates(self, er_graph):
        telemetry = AutomatonTelemetry()
        color_edges(er_graph, seed=3, telemetry=telemetry)
        compact = telemetry.compact_dict(max_points=8)
        assert len(compact["convergence"]) <= 9
        # The last superstep always survives decimation.
        assert compact["convergence"][-1]["superstep"] == telemetry.supersteps - 1
        assert compact["final_fraction"] == pytest.approx(1.0)
        json.dumps(compact)  # JSON-safe

    def test_summary_mentions_totals(self, er_graph):
        telemetry = AutomatonTelemetry()
        color_edges(er_graph, seed=3, telemetry=telemetry)
        text = telemetry.summary()
        assert "state totals" in text
        assert "final work fraction: 1.0000" in text


class TestFastpathSelection:
    def test_telemetry_keeps_fast_path(self, er_graph):
        engine = SynchronousEngine(
            er_graph, EdgeColoringProgram, telemetry=AutomatonTelemetry()
        )
        assert engine._fastpath_engaged()

    def test_profiler_keeps_fast_path(self, er_graph):
        engine = SynchronousEngine(
            er_graph, EdgeColoringProgram, profiler=PhaseProfiler()
        )
        assert engine._fastpath_engaged()

    def test_sampled_tracer_keeps_fast_path(self, er_graph):
        engine = SynchronousEngine(
            er_graph, EdgeColoringProgram, tracer=EventTracer(sample={"*": 10})
        )
        assert engine._fastpath_engaged()

    def test_full_tracer_forces_general_loop(self, er_graph):
        engine = SynchronousEngine(
            er_graph, EdgeColoringProgram, tracer=EventTracer()
        )
        assert not engine._fastpath_engaged()


class TestPhaseProfiler:
    def test_add_and_totals(self):
        prof = PhaseProfiler()
        prof.add("compute", 0.5)
        prof.add("compute", 0.25)
        prof.add("delivery", 0.25)
        assert prof.seconds["compute"] == pytest.approx(0.75)
        assert prof.counts["compute"] == 2
        assert prof.total_seconds == pytest.approx(1.0)

    def test_timer_context(self):
        prof = PhaseProfiler()
        with prof.timer("phase"):
            pass
        assert prof.seconds["phase"] >= 0.0
        assert prof.counts["phase"] == 1

    def test_summary_shares(self):
        prof = PhaseProfiler()
        prof.add("a", 3.0)
        prof.add("b", 1.0)
        text = prof.summary()
        assert "a: 3.0000s (75.0%)" in text
        assert text.index("a:") < text.index("b:")  # sorted descending

    def test_engine_fills_metrics(self, er_graph):
        prof = PhaseProfiler()
        result = color_edges(er_graph, seed=3, profiler=prof, compute="batched")
        assert set(result.metrics.phase_seconds) == {"compute", "delivery"}
        assert result.metrics.phase_seconds == prof.as_dict()
        report = result.metrics.report()
        assert "phase profile:" in report
        assert "compute:" in report

    def test_fused_kernel_profiles_compute(self, er_graph):
        # The default (fused vectorized) kernel has no separate delivery
        # step — delivery is metered arithmetically inside the round —
        # so the engine attributes the whole round to "compute".
        prof = PhaseProfiler()
        result = color_edges(er_graph, seed=3, profiler=prof)
        assert set(result.metrics.phase_seconds) == {"compute"}
        assert result.metrics.phase_seconds == prof.as_dict()

    def test_general_loop_phases(self, er_graph):
        prof = PhaseProfiler()
        result = color_edges(er_graph, seed=3, profiler=prof, fastpath=False)
        assert set(result.metrics.phase_seconds) == {
            "compute",
            "delivery",
            "model_check",
        }

    def test_unprofiled_metrics_have_no_phases(self, er_graph):
        result = color_edges(er_graph, seed=3)
        assert result.metrics.phase_seconds == {}
        assert "phase_seconds" not in result.metrics.to_dict()
