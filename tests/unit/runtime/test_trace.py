"""Unit tests for the event tracer."""

from repro.runtime.observe import NullSink, RingBufferSink
from repro.runtime.trace import EventTracer


class TestRecording:
    def test_record_and_read(self):
        t = EventTracer()
        t.record(0, 3, "invite", {"target": 5})
        t.record(1, 4, "accept", {"inviter": 3})
        assert len(t) == 2
        assert t.events[0].kind == "invite"
        assert t.events[0].data == {"target": 5}

    def test_data_copied(self):
        t = EventTracer()
        data = {"x": 1}
        t.record(0, 0, "k", data)
        data["x"] = 99
        assert t.events[0].data == {"x": 1}

    def test_iteration(self):
        t = EventTracer()
        t.record(0, 0, "a", {})
        assert [e.kind for e in t] == ["a"]


class TestCapacity:
    def test_fifo_eviction(self):
        t = EventTracer(capacity=2)
        for i in range(5):
            t.record(i, 0, f"e{i}", {})
        assert len(t) == 2
        assert [e.kind for e in t] == ["e3", "e4"]
        assert t.dropped == 3

    def test_unbounded_by_default(self):
        t = EventTracer()
        for i in range(100):
            t.record(i, 0, "e", {})
        assert len(t) == 100
        assert t.dropped == 0


class TestFilters:
    def _loaded(self):
        t = EventTracer()
        t.record(0, 1, "invite", {})
        t.record(0, 2, "accept", {})
        t.record(1, 1, "accept", {})
        return t

    def test_by_node(self):
        t = self._loaded()
        assert len(t.by_node(1)) == 2
        assert len(t.by_node(9)) == 0

    def test_by_kind(self):
        t = self._loaded()
        assert len(t.by_kind("accept")) == 2

    def test_clear(self):
        t = self._loaded()
        t.clear()
        assert len(t) == 0
        assert t.dropped == 0


class TestStreamingMode:
    def test_capacity_zero_retains_nothing(self):
        t = EventTracer(0)
        for i in range(10):
            t.record(i, 0, "e", {})
        assert len(t) == 0
        # Streaming mode is intentional, not eviction.
        assert t.dropped == 0

    def test_capacity_zero_still_feeds_sink(self):
        sink = NullSink()
        t = EventTracer(0, sink=sink)
        for i in range(7):
            t.record(i, 0, "e", {})
        assert sink.emitted == 7
        assert len(t) == 0


class TestSink:
    def test_tee_to_sink_and_ring(self):
        sink = RingBufferSink()
        t = EventTracer(capacity=2, sink=sink)
        for i in range(5):
            t.record(i, 0, f"e{i}", {})
        # Ring keeps the tail; the sink saw everything.
        assert [e.kind for e in t] == ["e3", "e4"]
        assert len(sink) == 5
        assert t.dropped == 3
        assert sink.dropped == 0


class TestSampling:
    def test_keep_one_in_n(self):
        t = EventTracer(sample={"e": 3})
        for i in range(9):
            t.record(i, 0, "e", {})
        assert [e.superstep for e in t] == [0, 3, 6]
        assert t.sampled_out == 6

    def test_default_rate_via_star(self):
        t = EventTracer(sample={"*": 2})
        for i in range(4):
            t.record(i, 0, "a", {})
            t.record(i, 0, "b", {})
        # Each kind is sampled on its own counter.
        assert len(t.by_kind("a")) == 2
        assert len(t.by_kind("b")) == 2

    def test_unlisted_kind_kept_without_star(self):
        t = EventTracer(sample={"noisy": 10})
        for i in range(5):
            t.record(i, 0, "rare", {})
        assert len(t) == 5
        assert t.sampled_out == 0

    def test_sampled_events_skip_sink_too(self):
        sink = NullSink()
        t = EventTracer(sink=sink, sample={"*": 5})
        for i in range(10):
            t.record(i, 0, "e", {})
        assert sink.emitted == 2

    def test_clear_resets_sampling_counters(self):
        t = EventTracer(sample={"*": 3})
        for i in range(5):
            t.record(i, 0, "e", {})
        t.clear()
        assert t.sampled_out == 0
        t.record(0, 0, "e", {})
        assert len(t) == 1  # counter restarted: first event kept again


class TestFastpathCompatibility:
    def test_full_tracer_not_compatible(self):
        assert EventTracer().fastpath_compatible is False
        assert EventTracer(capacity=10).fastpath_compatible is False
        assert EventTracer(0, sink=NullSink()).fastpath_compatible is False

    def test_sampled_tracer_compatible(self):
        assert EventTracer(sample={"*": 2}).fastpath_compatible is True
        assert EventTracer(100, sample={"invite": 10}).fastpath_compatible is True
