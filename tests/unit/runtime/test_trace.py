"""Unit tests for the event tracer."""

from repro.runtime.trace import EventTracer


class TestRecording:
    def test_record_and_read(self):
        t = EventTracer()
        t.record(0, 3, "invite", {"target": 5})
        t.record(1, 4, "accept", {"inviter": 3})
        assert len(t) == 2
        assert t.events[0].kind == "invite"
        assert t.events[0].data == {"target": 5}

    def test_data_copied(self):
        t = EventTracer()
        data = {"x": 1}
        t.record(0, 0, "k", data)
        data["x"] = 99
        assert t.events[0].data == {"x": 1}

    def test_iteration(self):
        t = EventTracer()
        t.record(0, 0, "a", {})
        assert [e.kind for e in t] == ["a"]


class TestCapacity:
    def test_fifo_eviction(self):
        t = EventTracer(capacity=2)
        for i in range(5):
            t.record(i, 0, f"e{i}", {})
        assert len(t) == 2
        assert [e.kind for e in t] == ["e3", "e4"]
        assert t.dropped == 3

    def test_unbounded_by_default(self):
        t = EventTracer()
        for i in range(100):
            t.record(i, 0, "e", {})
        assert len(t) == 100
        assert t.dropped == 0


class TestFilters:
    def _loaded(self):
        t = EventTracer()
        t.record(0, 1, "invite", {})
        t.record(0, 2, "accept", {})
        t.record(1, 1, "accept", {})
        return t

    def test_by_node(self):
        t = self._loaded()
        assert len(t.by_node(1)) == 2
        assert len(t.by_node(9)) == 0

    def test_by_kind(self):
        t = self._loaded()
        assert len(t.by_kind("accept")) == 2

    def test_clear(self):
        t = self._loaded()
        t.clear()
        assert len(t) == 0
        assert t.dropped == 0
