"""Unit tests for the reliable-transport decorator."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs.adjacency import Graph
from repro.runtime.engine import SynchronousEngine
from repro.runtime.faults import (
    CrashNodes,
    DropRandomMessages,
    DuplicateMessages,
    ReorderWithinRound,
    compose,
)
from repro.runtime.node import Context, NodeProgram
from repro.runtime.transport import (
    Frame,
    ReliableTransportProgram,
    TransportConfig,
    TransportStats,
    collect_transport_stats,
    with_reliable_transport,
)
from repro.runtime.metrics import RunMetrics


class Accumulator(NodeProgram):
    """Broadcasts its id+pulse for K pulses and logs everything heard."""

    K = 5

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.heard = []
        self.downs = []

    def on_superstep(self, ctx: Context, inbox):
        for msg in inbox:
            self.heard.append((ctx.superstep, msg.sender, msg.payload))
        if ctx.superstep >= self.K:
            self.halt()
            return
        ctx.broadcast((self.node_id, ctx.superstep))

    def on_neighbor_down(self, ctx: Context, neighbor: int):
        self.downs.append(neighbor)


def path3() -> Graph:
    g = Graph.from_num_nodes(3)
    g.add_edges_from([(0, 1), (1, 2)])
    return g


def run_wrapped(graph, *, seed=0, faults=None, config=None, max_supersteps=5000):
    engine = SynchronousEngine(
        graph,
        with_reliable_transport(Accumulator, config),
        seed=seed,
        faults=faults,
        max_supersteps=max_supersteps,
    )
    return engine.run()


class TestConfig:
    def test_defaults_valid(self):
        cfg = TransportConfig()
        assert cfg.retry_timeout >= 1 and cfg.max_retries >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retry_timeout": 0},
            {"backoff": 0.9},
            {"max_retries": 0},
            {"probe_timeout": 0},
            {"max_probes": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            TransportConfig(**kwargs)

    def test_budget_covers_detection(self):
        cfg = TransportConfig()
        assert cfg.supersteps_budget(100) > 3 * 100
        assert cfg.detection_span() > cfg.retry_timeout * cfg.max_retries


class TestCleanNetwork:
    def test_inner_sees_synchronous_inboxes(self):
        bare = SynchronousEngine(path3(), Accumulator, seed=1).run()
        wrapped = run_wrapped(path3(), seed=1)
        inner = [p.inner for p in wrapped.programs]
        assert [p.heard for p in inner] == [p.heard for p in bare.programs]

    def test_every_wrapper_halts(self):
        wrapped = run_wrapped(path3(), seed=1)
        assert wrapped.completed
        assert all(p.halted and p.inner.halted for p in wrapped.programs)

    def test_no_retransmissions_at_zero_loss(self):
        wrapped = run_wrapped(path3(), seed=1)
        stats = collect_transport_stats(wrapped.programs)
        assert stats.retransmissions == 0
        assert stats.partners_declared_dead == 0
        assert stats.frames_sent > 0

    def test_pulse_counts_match_bare_supersteps(self):
        bare = SynchronousEngine(path3(), Accumulator, seed=1).run()
        wrapped = run_wrapped(path3(), seed=1)
        pulses = max(p.pulse + 1 for p in wrapped.programs)
        assert pulses == bare.supersteps

    def test_isolated_node_halts_immediately(self):
        g = Graph.from_num_nodes(1)

        class Instant(NodeProgram):
            def __init__(self, u):
                pass

            def on_init(self, ctx):
                self.halt()

            def on_superstep(self, ctx, inbox):
                raise AssertionError("should never run")

        run = SynchronousEngine(g, with_reliable_transport(Instant), seed=0).run()
        assert run.completed and run.supersteps == 0


class TestLossyNetwork:
    def test_delivers_exactly_once_under_loss(self):
        bare = SynchronousEngine(path3(), Accumulator, seed=2).run()
        wrapped = run_wrapped(
            path3(), seed=2, faults=DropRandomMessages(0.25, seed=7)
        )
        assert wrapped.completed
        inner = [p.inner for p in wrapped.programs]
        assert [p.heard for p in inner] == [p.heard for p in bare.programs]
        stats = collect_transport_stats(wrapped.programs)
        assert stats.retransmissions > 0

    def test_duplicate_frames_suppressed(self):
        wrapped = run_wrapped(
            path3(), seed=3, faults=DuplicateMessages(1.0, seed=5)
        )
        assert wrapped.completed
        bare = SynchronousEngine(path3(), Accumulator, seed=3).run()
        inner = [p.inner for p in wrapped.programs]
        assert [p.heard for p in inner] == [p.heard for p in bare.programs]
        stats = collect_transport_stats(wrapped.programs)
        assert stats.duplicates_suppressed > 0

    def test_reorder_within_round_harmless(self):
        bare = SynchronousEngine(path3(), Accumulator, seed=4).run()
        wrapped = run_wrapped(path3(), seed=4, faults=ReorderWithinRound(seed=2))
        inner = [p.inner for p in wrapped.programs]
        assert [p.heard for p in inner] == [p.heard for p in bare.programs]

    def test_loss_duplication_reorder_combined(self):
        faults = compose(
            DropRandomMessages(0.15, seed=11),
            DuplicateMessages(0.2, seed=12),
            ReorderWithinRound(seed=13),
        )
        bare = SynchronousEngine(path3(), Accumulator, seed=5).run()
        wrapped = run_wrapped(path3(), seed=5, faults=faults)
        assert wrapped.completed
        inner = [p.inner for p in wrapped.programs]
        assert [p.heard for p in inner] == [p.heard for p in bare.programs]


class TestJitterAndBounds:
    """Deterministic retransmit jitter and the bounded retransmit queue."""

    JITTERED = dict(jitter=0.4, jitter_seed=21)

    @pytest.mark.parametrize(
        "kwargs",
        [{"jitter": -0.1}, {"jitter": 1.0}, {"max_pending": 0}],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            TransportConfig(**kwargs)

    def test_zero_jitter_preserves_legacy_schedule(self):
        prog = ReliableTransportProgram(Accumulator(0))
        cfg = prog.config
        for attempts in range(1, 6):
            assert prog._retry_interval(0, 1, 5, attempts) == max(
                1, round(cfg.retry_timeout * cfg.backoff ** (attempts - 1))
            )

    def test_jitter_is_a_pure_function_of_coordinates(self):
        a = ReliableTransportProgram(Accumulator(0), TransportConfig(**self.JITTERED))
        b = ReliableTransportProgram(Accumulator(0), TransportConfig(**self.JITTERED))
        coords = [(u, v, s, k) for u in (0, 1) for v in (2, 3) for s in (0, 7) for k in (1, 3)]
        assert [a._retry_interval(*c) for c in coords] == [
            b._retry_interval(*c) for c in coords
        ]

    def test_jitter_decorrelates_links(self):
        # Widely-spread attempts over many links must not all share the
        # unjittered interval — otherwise the knob is a no-op.
        prog = ReliableTransportProgram(
            Accumulator(0), TransportConfig(retry_timeout=10, **self.JITTERED)
        )
        intervals = {prog._retry_interval(0, v, 0, 3) for v in range(30)}
        assert len(intervals) > 1

    def test_jittered_runs_deterministic_under_fixed_seed(self):
        cfg = TransportConfig(**self.JITTERED)

        def campaign():
            run = run_wrapped(
                path3(), seed=9, faults=DropRandomMessages(0.3, seed=3), config=cfg
            )
            stats = collect_transport_stats(run.programs)
            return [p.inner.heard for p in run.programs], stats, run.supersteps

        first, second = campaign(), campaign()
        assert first == second
        assert first[1].retransmissions > 0

    def test_jittered_delivery_still_exactly_once(self):
        bare = SynchronousEngine(path3(), Accumulator, seed=10).run()
        wrapped = run_wrapped(
            path3(),
            seed=10,
            faults=DropRandomMessages(0.3, seed=4),
            config=TransportConfig(**self.JITTERED),
        )
        assert wrapped.completed
        inner = [p.inner for p in wrapped.programs]
        assert [p.heard for p in inner] == [p.heard for p in bare.programs]

    def test_queue_overflow_escalates_to_link_failure(self):
        # The inner program floods one pulse with more unicasts than the
        # bound allows; the wrapper must escalate instead of queueing.
        class Flooder(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id
                self.downs = []

            def on_superstep(self, ctx, inbox):
                if self.node_id == 0 and ctx.superstep == 0:
                    for k in range(4):
                        ctx.send(1, ("burst", k))
                if ctx.superstep >= 2:
                    self.halt()

            def on_neighbor_down(self, ctx, neighbor):
                self.downs.append(neighbor)

        g = Graph.from_num_nodes(2)
        g.add_edges_from([(0, 1)])
        run = SynchronousEngine(
            g,
            with_reliable_transport(Flooder, TransportConfig(max_pending=2)),
            seed=0,
            max_supersteps=500,
        ).run()
        stats = collect_transport_stats(run.programs)
        assert stats.queue_overflows >= 1
        assert run.programs[0].dead_neighbors == {1}
        assert run.programs[0].inner.downs == [1]


class TestFailureDetection:
    def test_crash_triggers_on_neighbor_down(self):
        cfg = TransportConfig(retry_timeout=2, max_retries=3, probe_timeout=3, max_probes=3)
        wrapped = run_wrapped(
            path3(),
            seed=6,
            faults=CrashNodes({1: 4}),
            config=cfg,
        )
        assert wrapped.completed
        assert wrapped.crashed == frozenset({1})
        survivors = [wrapped.programs[0], wrapped.programs[2]]
        for p in survivors:
            assert p.inner.downs == [1]
            assert p.dead_neighbors == {1}
        stats = collect_transport_stats(wrapped.programs)
        assert stats.partners_declared_dead >= 2

    def test_ghosts_leave_after_neighbors_finish(self):
        # Node 1 (the middle of the path) halts only after 0 and 2 are
        # known done; all three must still terminate.
        wrapped = run_wrapped(path3(), seed=7)
        assert wrapped.completed
        assert all(p.halted for p in wrapped.programs)


class TestStats:
    def test_stats_addition(self):
        a = TransportStats(frames_sent=2, retransmissions=1, probes_sent=3)
        b = TransportStats(frames_sent=5, duplicates_suppressed=4)
        c = a + b
        assert c.frames_sent == 7
        assert c.retransmissions == 1
        assert c.duplicates_suppressed == 4
        assert c.probes_sent == 3

    def test_fold_into_metrics(self):
        stats = TransportStats(
            frames_sent=10, retransmissions=2, duplicates_suppressed=3, probes_sent=4
        )
        metrics = RunMetrics()
        stats.fold_into(metrics)
        assert metrics.transport_frames == 10
        assert metrics.retransmissions == 2
        assert metrics.transport_duplicates_dropped == 3
        assert metrics.transport_probes == 4

    def test_collect_skips_non_transport_programs(self):
        class Plain(NodeProgram):
            def on_superstep(self, ctx, inbox):
                pass

        total = collect_transport_stats([Plain(), None])
        assert total == TransportStats()

    def test_frame_is_frozen(self):
        f = Frame(ack=0, safe=0, done=False)
        with pytest.raises(AttributeError):
            f.ack = 1


class TestModelCompliance:
    def test_strict_mode_holds_under_loss(self):
        # One frame per neighbor per superstep: strict mode would raise
        # MessagingViolation otherwise; loss exercises retransmissions.
        run = run_wrapped(
            path3(), seed=8, faults=DropRandomMessages(0.3, seed=1)
        )
        assert run.completed

    def test_wrapper_exposes_inner(self):
        prog = ReliableTransportProgram(Accumulator(0))
        assert isinstance(prog.inner, Accumulator)
