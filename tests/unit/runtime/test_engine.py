"""Unit tests for the synchronous engine: delivery, halting, model checks."""

from typing import Sequence

import pytest

from repro.errors import GraphError, MessagingViolation
from repro.graphs.adjacency import Graph
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.runtime.engine import SynchronousEngine
from repro.runtime.message import Message
from repro.runtime.node import Context, NodeProgram
from repro.runtime.trace import EventTracer


class Recorder(NodeProgram):
    """Runs ``steps`` supersteps, logging inboxes, then halts."""

    def __init__(self, node_id: int, steps: int = 1):
        self.node_id = node_id
        self.steps = steps
        self.inboxes = []

    def on_superstep(self, ctx: Context, inbox: Sequence[Message]):
        self.inboxes.append([(m.sender, m.payload) for m in inbox])
        if ctx.superstep + 1 >= self.steps:
            self.halt()


class PingOnce(Recorder):
    """Broadcasts its id in superstep 0; listens in superstep 1."""

    def __init__(self, node_id: int):
        super().__init__(node_id, steps=2)

    def on_superstep(self, ctx, inbox):
        if ctx.superstep == 0:
            ctx.broadcast(("ping", self.node_id))
        super().on_superstep(ctx, inbox)


class TestDeliverySemantics:
    def test_messages_arrive_next_superstep(self):
        g = path_graph(2)
        run = SynchronousEngine(g, PingOnce).run()
        p0, p1 = run.programs
        assert p0.inboxes[0] == []  # nothing in flight yet
        assert p0.inboxes[1] == [(1, ("ping", 1))]
        assert p1.inboxes[1] == [(0, ("ping", 0))]

    def test_broadcast_reaches_all_neighbors_only(self):
        g = star_graph(3)  # hub 0
        run = SynchronousEngine(g, PingOnce).run()
        hub = run.programs[0]
        # hub hears all leaves; leaves hear only the hub
        assert sorted(s for s, _ in hub.inboxes[1]) == [1, 2, 3]
        for leaf in run.programs[1:]:
            assert [s for s, _ in leaf.inboxes[1]] == [0]

    def test_inbox_ordered_by_sender_id(self):
        g = star_graph(4)
        run = SynchronousEngine(g, PingOnce).run()
        senders = [s for s, _ in run.programs[0].inboxes[1]]
        assert senders == sorted(senders)

    def test_unicast(self):
        class SendRight(Recorder):
            def __init__(self, node_id):
                super().__init__(node_id, steps=2)

            def on_superstep(self, ctx, inbox):
                if ctx.superstep == 0 and self.node_id + 1 in ctx.neighbors:
                    ctx.send(self.node_id + 1, "hi")
                Recorder.on_superstep(self, ctx, inbox)

        run = SynchronousEngine(path_graph(3), SendRight).run()
        assert run.programs[1].inboxes[1] == [(0, "hi")]
        assert run.programs[2].inboxes[1] == [(1, "hi")]
        assert run.programs[0].inboxes[1] == []


class TestHalting:
    def test_all_halt_completes(self):
        run = SynchronousEngine(cycle_graph(4), lambda u: Recorder(u, steps=3)).run()
        assert run.completed
        assert run.supersteps == 3
        assert all(p.halted for p in run.programs)

    def test_budget_exhaustion(self):
        class Forever(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_superstep(self, ctx, inbox):
                pass

        run = SynchronousEngine(
            cycle_graph(3), Forever, max_supersteps=5
        ).run()
        assert not run.completed
        assert run.supersteps == 5

    def test_halt_in_on_init(self):
        class Immediate(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_init(self, ctx):
                self.halt()

            def on_superstep(self, ctx, inbox):  # pragma: no cover
                raise AssertionError("should never run")

        run = SynchronousEngine(path_graph(2), Immediate).run()
        assert run.completed
        assert run.supersteps == 0

    def test_message_to_halted_node_dropped(self):
        class HaltFirst(Recorder):
            """Node 0 halts immediately; node 1 messages it anyway."""

            def on_superstep(self, ctx, inbox):
                if self.node_id == 0:
                    self.halt()
                    return
                if ctx.superstep == 0:
                    ctx.send(0, "too late")
                Recorder.on_superstep(self, ctx, inbox)

        run = SynchronousEngine(path_graph(2), HaltFirst).run()
        assert run.metrics.messages_sent == 1
        assert run.metrics.messages_delivered == 0


class TestModelEnforcement:
    def test_two_unicasts_same_dest_rejected(self):
        class DoubleSend(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_superstep(self, ctx, inbox):
                if self.node_id == 0:
                    ctx.send(1, "a")
                    ctx.send(1, "b")
                self.halt()

        with pytest.raises(MessagingViolation):
            SynchronousEngine(path_graph(2), DoubleSend).run()

    def test_broadcast_plus_unicast_rejected(self):
        class Both(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_superstep(self, ctx, inbox):
                if self.node_id == 0:
                    ctx.broadcast("x")
                    ctx.send(1, "y")
                self.halt()

        with pytest.raises(MessagingViolation):
            SynchronousEngine(path_graph(2), Both).run()

    def test_non_neighbor_rejected(self):
        class FarSend(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_superstep(self, ctx, inbox):
                if self.node_id == 0:
                    ctx.send(2, "skip a hop")
                self.halt()

        with pytest.raises(MessagingViolation):
            SynchronousEngine(path_graph(3), FarSend).run()

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_duplicate_target_rejected_on_both_paths(self, fastpath):
        # Regression for the all-unicast fast check (set compression):
        # a duplicated destination must still raise, on the fast path's
        # inlined checker and on the general loop alike.
        class DoubleSend(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_superstep(self, ctx, inbox):
                if self.node_id == 0:
                    ctx.send(1, "a")
                    ctx.send(2, "b")
                    ctx.send(1, "c")
                self.halt()

        with pytest.raises(MessagingViolation):
            SynchronousEngine(star_graph(3), DoubleSend, fastpath=fastpath).run()

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_non_neighbor_in_multi_unicast_rejected(self, fastpath):
        # The all-unicast subset test must catch a non-neighbor mixed
        # into an otherwise valid fan of unicasts.
        class FarFan(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_superstep(self, ctx, inbox):
                if self.node_id == 0:
                    ctx.send(1, "ok")
                    ctx.send(2, "not my neighbor")
                self.halt()

        with pytest.raises(MessagingViolation):
            SynchronousEngine(path_graph(3), FarFan, fastpath=fastpath).run()

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_distinct_unicast_fan_allowed(self, fastpath):
        # The happy case the all-unicast fast path accelerates: one
        # message to each of several distinct neighbors is legal.
        class Fan(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id
                self.got = 0

            def on_superstep(self, ctx, inbox):
                self.got += len(inbox)
                if ctx.superstep == 0 and self.node_id == 0:
                    for v in ctx.neighbors:
                        ctx.send(v, "hello")
                if ctx.superstep >= 1:
                    self.halt()

        run = SynchronousEngine(star_graph(4), Fan, fastpath=fastpath).run()
        assert [p.got for p in run.programs] == [0, 1, 1, 1, 1]

    def test_lenient_mode_allows_double_send(self):
        class DoubleSend(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id
                self.got = 0

            def on_superstep(self, ctx, inbox):
                self.got += len(inbox)
                if ctx.superstep == 0 and self.node_id == 0:
                    ctx.send(1, "a")
                    ctx.send(1, "b")
                if ctx.superstep >= 1:
                    self.halt()

        run = SynchronousEngine(path_graph(2), DoubleSend, strict=False).run()
        assert run.programs[1].got == 2


class TestValidation:
    def test_noncontiguous_ids_rejected(self):
        g = Graph([(3, 7)])
        with pytest.raises(GraphError):
            SynchronousEngine(g, lambda u: Recorder(u))

    def test_bad_budget(self):
        with pytest.raises(GraphError):
            SynchronousEngine(path_graph(2), Recorder, max_supersteps=0)


class TestMetricsAndTrace:
    def test_message_counting(self):
        run = SynchronousEngine(star_graph(3), PingOnce).run()
        # 4 broadcasts; hub's reaches 3 leaves, each leaf's reaches hub.
        assert run.metrics.messages_sent == 4
        assert run.metrics.messages_delivered == 6
        assert run.metrics.supersteps == 2
        assert run.metrics.live_nodes_per_superstep == [4, 4]

    def test_tracer_wired_to_context(self):
        class Tracey(Recorder):
            def on_superstep(self, ctx, inbox):
                ctx.trace("step", at=ctx.superstep)
                Recorder.on_superstep(self, ctx, inbox)

        tracer = EventTracer()
        SynchronousEngine(path_graph(2), Tracey, tracer=tracer).run()
        assert len(tracer) == 2
        assert {e.kind for e in tracer} == {"step"}

    def test_empty_graph_runs(self):
        run = SynchronousEngine(Graph(), Recorder).run()
        assert run.completed
        assert run.supersteps == 0
