"""Unit tests for the multiprocessing executor."""

import multiprocessing as mp
from typing import Sequence

import pytest

from repro.errors import ConfigurationError, GraphError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import cycle_graph, grid_graph
from repro.runtime.engine import SynchronousEngine
from repro.runtime.message import Message
from repro.runtime.node import Context, NodeProgram
from repro.runtime.parallel import ParallelEngine, partition_blocks

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="fork start method unavailable"
)


class TestPartition:
    def test_even_split(self):
        assert partition_blocks(6, 3) == [range(0, 2), range(2, 4), range(4, 6)]

    def test_uneven_split(self):
        blocks = partition_blocks(7, 3)
        assert [len(b) for b in blocks] == [3, 2, 2]
        assert sum(len(b) for b in blocks) == 7

    def test_more_workers_than_nodes(self):
        blocks = partition_blocks(2, 5)
        assert sum(len(b) for b in blocks) == 2

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            partition_blocks(4, 0)


class GossipSum(NodeProgram):
    """Three rounds of neighbor-sum gossip; halts with a deterministic value."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.value = node_id + 1

    def on_superstep(self, ctx: Context, inbox: Sequence[Message]):
        self.value += sum(m.payload for m in inbox)
        # add a random component so RNG placement-invariance is exercised
        self.value += ctx.rng.randrange(100)
        if ctx.superstep < 3:
            ctx.broadcast(self.value)
        else:
            self.halt()


class Forever(NodeProgram):
    """Never halts — at module scope because final program state is
    pickled back from the workers."""

    def __init__(self, node_id):
        self.node_id = node_id

    def on_superstep(self, ctx, inbox):
        pass


@needs_fork
class TestParallelExecution:
    def test_matches_sequential(self):
        g = grid_graph(4, 4)
        seq = SynchronousEngine(g, GossipSum, seed=5).run()
        par = ParallelEngine(g, GossipSum, seed=5, workers=3).run()
        assert par.completed
        assert [p.value for p in par.programs] == [p.value for p in seq.programs]

    def test_metrics_match_sequential(self):
        g = cycle_graph(8)
        seq = SynchronousEngine(g, GossipSum, seed=2).run()
        par = ParallelEngine(g, GossipSum, seed=2, workers=2).run()
        assert par.metrics.messages_sent == seq.metrics.messages_sent
        assert par.metrics.messages_delivered == seq.metrics.messages_delivered
        assert par.supersteps == seq.supersteps

    def test_single_worker(self):
        g = cycle_graph(5)
        par = ParallelEngine(g, GossipSum, seed=1, workers=1).run()
        seq = SynchronousEngine(g, GossipSum, seed=1).run()
        assert [p.value for p in par.programs] == [p.value for p in seq.programs]

    def test_budget_exhaustion_reported(self):
        par = ParallelEngine(
            cycle_graph(4), Forever, seed=1, workers=2, max_supersteps=4
        ).run()
        assert not par.completed
        assert par.supersteps == 4

    def test_noncontiguous_rejected(self):
        with pytest.raises(GraphError):
            ParallelEngine(Graph([(2, 5)]), GossipSum)

    def test_telemetry_matches_sequential(self):
        from repro.core.edge_coloring import EdgeColoringProgram
        from repro.runtime.observe import AutomatonTelemetry

        g = grid_graph(4, 4)
        seq_t = AutomatonTelemetry()
        seq = SynchronousEngine(g, EdgeColoringProgram, seed=7, telemetry=seq_t).run()
        par_t = AutomatonTelemetry()
        par = ParallelEngine(
            g, EdgeColoringProgram, seed=7, workers=3, telemetry=par_t
        ).run()
        assert par.completed and seq.completed
        # Worker-local collection merged at stop is bit-identical to a
        # sequential collection of the same run.
        assert par_t.to_dict() == seq_t.to_dict()
        for hist in par_t.state_histograms:
            assert sum(hist.values()) >= 0  # well-formed
        assert par_t.colored_fraction()[-1] == 1.0
