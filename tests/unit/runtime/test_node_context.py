"""Unit tests for Context and the NodeProgram lifecycle surface."""

import random

from repro.runtime.message import BROADCAST
from repro.runtime.node import Context, NodeProgram
from repro.runtime.trace import EventTracer


def make_ctx(node_id=0, neighbors=(1, 2), tracer=None):
    return Context(node_id, tuple(neighbors), random.Random(0), tracer)


class TestContext:
    def test_identity(self):
        ctx = make_ctx(5, (1, 9))
        assert ctx.node_id == 5
        assert ctx.neighbors == (1, 9)
        assert ctx.degree == 2

    def test_send_queues_unicast(self):
        ctx = make_ctx()
        ctx._begin_superstep(0)
        ctx.send(1, "payload")
        out = ctx._drain_outbox()
        assert len(out) == 1
        assert out[0].dest == 1 and out[0].sender == 0

    def test_broadcast_queues_broadcast(self):
        ctx = make_ctx()
        ctx._begin_superstep(0)
        ctx.broadcast("b")
        out = ctx._drain_outbox()
        assert out[0].dest == BROADCAST

    def test_outbox_cleared_each_superstep(self):
        ctx = make_ctx()
        ctx._begin_superstep(0)
        ctx.send(1, "x")
        ctx._begin_superstep(1)
        assert ctx._drain_outbox() == []

    def test_superstep_property(self):
        ctx = make_ctx()
        ctx._begin_superstep(7)
        assert ctx.superstep == 7

    def test_trace_noop_without_tracer(self):
        ctx = make_ctx()
        ctx.trace("anything", a=1)  # must not raise

    def test_trace_records_with_tracer(self):
        tracer = EventTracer()
        ctx = make_ctx(tracer=tracer)
        ctx._begin_superstep(3)
        ctx.trace("evt", value=9)
        assert tracer.events[0].superstep == 3
        assert tracer.events[0].node == 0
        assert tracer.events[0].data == {"value": 9}


class TestNodeProgram:
    def test_halt_sets_flag(self):
        class P(NodeProgram):
            def on_superstep(self, ctx, inbox):
                pass

        p = P()
        assert not p.halted
        p.halt()
        assert p.halted

    def test_on_init_default_noop(self):
        class P(NodeProgram):
            def on_superstep(self, ctx, inbox):
                pass

        P().on_init(make_ctx())  # must not raise
