"""The fast path's scalar-tier inbox buffer pool.

Below ``_VECTOR_MIN_ARCS`` the fast delivery path appends message
copies into pooled list buffers that are cleared and reused across
supersteps.  Recycling must never *alias*: two live nodes may not share
a buffer within a superstep, and a recycled buffer must carry only the
current superstep's messages.  The probe program snapshots every inbox
it sees (object id + payload contents) so both properties are checked
from the program's side of the API — the only contract that matters.
"""

from typing import Sequence

from repro.graphs.adjacency import Graph
from repro.runtime.engine import _VECTOR_MIN_ARCS, SynchronousEngine
from repro.runtime.message import Message
from repro.runtime.node import Context, NodeProgram

N = 6
ROUNDS = 8

#: (superstep, node) -> (id of the inbox object, snapshot of payloads).
OBSERVED = {}


class Probe(NodeProgram):
    """Broadcast ``(me, superstep)`` each superstep; record every inbox."""

    def __init__(self, node_id: int):
        self.node_id = node_id

    def on_superstep(self, ctx: Context, inbox: Sequence[Message]):
        OBSERVED[(ctx.superstep, self.node_id)] = (
            id(inbox),
            tuple((m.sender, m.payload) for m in inbox),
        )
        if ctx.superstep >= ROUNDS:
            self.halt()
        else:
            ctx.broadcast((self.node_id, ctx.superstep))


def _run() -> None:
    OBSERVED.clear()
    g = Graph.from_num_nodes(N)
    for u in range(N):
        g.add_edge(u, (u + 1) % N)
    assert 2 * g.num_edges < _VECTOR_MIN_ARCS  # stays in the scalar tier
    run = SynchronousEngine(g, Probe, seed=0, fastpath=True).run()
    assert run.completed


def test_recycled_buffers_carry_only_current_messages():
    _run()
    for superstep in range(1, ROUNDS + 1):
        for u in range(N):
            _, payloads = OBSERVED[(superstep, u)]
            expected = tuple(
                sorted(
                    ((v, (v, superstep - 1)) for v in ((u - 1) % N, (u + 1) % N)),
                    key=lambda item: item[0],
                )
            )
            assert payloads == expected, (superstep, u)


def test_no_aliasing_within_a_superstep():
    _run()
    for superstep in range(1, ROUNDS + 1):
        ids = [OBSERVED[(superstep, u)][0] for u in range(N)]
        assert len(set(ids)) == N, f"shared inbox buffer at superstep {superstep}"


def test_buffers_are_recycled_across_supersteps():
    _run()
    ids_by_superstep = [
        {OBSERVED[(superstep, u)][0] for u in range(N)}
        for superstep in range(1, ROUNDS + 1)
    ]
    reused = any(
        ids_by_superstep[i] & ids_by_superstep[i + 1]
        for i in range(len(ids_by_superstep) - 1)
    )
    assert reused, "pool never recycled a buffer"
