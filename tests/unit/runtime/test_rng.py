"""Unit tests for deterministic per-node RNG streams."""

import pytest

from repro.runtime.rng import node_rng, spawn_node_rngs


class TestSpawn:
    def test_count(self):
        assert len(spawn_node_rngs(0, 7)) == 7

    def test_deterministic(self):
        a = spawn_node_rngs(42, 5)
        b = spawn_node_rngs(42, 5)
        assert [r.random() for r in a] == [r.random() for r in b]

    def test_streams_differ_across_nodes(self):
        rngs = spawn_node_rngs(1, 10)
        draws = [r.random() for r in rngs]
        assert len(set(draws)) == 10

    def test_streams_differ_across_seeds(self):
        a = spawn_node_rngs(1, 3)
        b = spawn_node_rngs(2, 3)
        assert [r.random() for r in a] != [r.random() for r in b]


class TestNodeRng:
    def test_matches_spawn(self):
        spawned = spawn_node_rngs(9, 6)
        for i in (0, 3, 5):
            solo = node_rng(9, i, 6)
            assert solo.random() == spawned[i].random()

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            node_rng(0, 5, 5)
        with pytest.raises(ValueError):
            node_rng(0, -1, 5)
