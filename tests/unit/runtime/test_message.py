"""Unit tests for Message objects."""

import dataclasses

import pytest

from repro.core.messages import Invite, Report
from repro.runtime.message import BROADCAST, Message


class TestMessage:
    def test_unicast(self):
        m = Message(sender=1, dest=2, payload="x")
        assert not m.is_broadcast
        assert m.sender == 1 and m.dest == 2

    def test_broadcast_flag(self):
        m = Message(sender=1, dest=BROADCAST, payload=None)
        assert m.is_broadcast

    def test_immutable(self):
        m = Message(sender=0, dest=1, payload=None)
        with pytest.raises(dataclasses.FrozenInstanceError):
            m.sender = 5


class TestSizeModel:
    def test_none_payload(self):
        assert Message(0, 1, None).size() == 2

    def test_scalar_payload(self):
        assert Message(0, 1, 42).size() == 3

    def test_tuple_payload(self):
        assert Message(0, 1, (1, 2, 3)).size() == 5

    def test_dataclass_payload_counts_fields(self):
        invite = Invite(sender=0, target=1, color=2)
        assert Message(0, 1, invite).size() == 2 + 3

    def test_report_payload(self):
        report = Report(sender=0, colors=(1, 2))
        assert Message(0, 1, report).size() == 2 + 5  # 5 dataclass fields


class TestSizeMemoization:
    """The per-type word-count cache must pin every wire payload type."""

    def test_all_core_message_types_pinned(self):
        from repro.core.messages import Reply

        # 2 header words + one word per dataclass field.
        assert Message(0, 1, Invite(sender=0, target=1, color=2)).size() == 5
        assert Message(0, 1, Reply(sender=1, target=0, color=2)).size() == 5
        assert Message(0, 1, Report(sender=0)).size() == 7
        assert Message(0, 1, None).size() == 2

    def test_cache_is_populated_per_type(self):
        from repro.runtime.message import _WORDS_BY_TYPE

        Message(0, 1, Invite(sender=0, target=1)).size()
        assert _WORDS_BY_TYPE[Invite] == 5

    def test_container_sizes_stay_length_dependent(self):
        from repro.runtime.message import _WORDS_BY_TYPE

        assert Message(0, 1, (1,)).size() == 3
        assert Message(0, 1, (1, 2, 3, 4)).size() == 6
        assert _WORDS_BY_TYPE[tuple] is None
        assert Message(0, 1, frozenset({1, 2})).size() == 4
        assert Message(0, 1, [5]).size() == 3

    def test_repeated_calls_stable(self):
        m = Message(0, 1, Report(sender=0, colors=(1, 2)))
        assert m.size() == m.size() == 7
