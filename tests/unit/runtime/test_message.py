"""Unit tests for Message objects."""

import dataclasses

import pytest

from repro.core.messages import Invite, Report
from repro.runtime.message import BROADCAST, Message


class TestMessage:
    def test_unicast(self):
        m = Message(sender=1, dest=2, payload="x")
        assert not m.is_broadcast
        assert m.sender == 1 and m.dest == 2

    def test_broadcast_flag(self):
        m = Message(sender=1, dest=BROADCAST, payload=None)
        assert m.is_broadcast

    def test_immutable(self):
        m = Message(sender=0, dest=1, payload=None)
        with pytest.raises(dataclasses.FrozenInstanceError):
            m.sender = 5


class TestSizeModel:
    def test_none_payload(self):
        assert Message(0, 1, None).size() == 2

    def test_scalar_payload(self):
        assert Message(0, 1, 42).size() == 3

    def test_tuple_payload(self):
        assert Message(0, 1, (1, 2, 3)).size() == 5

    def test_dataclass_payload_counts_fields(self):
        invite = Invite(sender=0, target=1, color=2)
        assert Message(0, 1, invite).size() == 2 + 3

    def test_report_payload(self):
        report = Report(sender=0, colors=(1, 2))
        assert Message(0, 1, report).size() == 2 + 5  # 5 dataclass fields
