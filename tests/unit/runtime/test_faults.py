"""Unit tests for fault-injection message filters."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.faults import DropLinks, DropRandomMessages, deliver_all
from repro.runtime.message import Message


def msg(sender=0, dest=1):
    return Message(sender=sender, dest=dest, payload=None)


class TestDeliverAll:
    def test_always_true(self):
        assert deliver_all(0, msg(), 1)
        assert deliver_all(99, msg(5, 6), 6)


class TestDropRandom:
    def test_zero_rate_never_drops(self):
        f = DropRandomMessages(0.0, seed=1)
        assert all(f(i, msg(), 1) for i in range(100))

    def test_one_rate_always_drops(self):
        f = DropRandomMessages(1.0, seed=1)
        assert not any(f(i, msg(), 1) for i in range(100))

    def test_rate_roughly_respected(self):
        f = DropRandomMessages(0.3, seed=7)
        delivered = sum(f(i, msg(), 1) for i in range(2000))
        assert 1250 < delivered < 1550

    def test_deterministic_per_seed(self):
        a = [DropRandomMessages(0.5, seed=3)(i, msg(), 1) for i in range(50)]
        b = [DropRandomMessages(0.5, seed=3)(i, msg(), 1) for i in range(50)]
        assert a == b

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            DropRandomMessages(1.5)
        with pytest.raises(ConfigurationError):
            DropRandomMessages(-0.1)


class TestDropLinks:
    def test_severed_link_blocked(self):
        f = DropLinks([(0, 1)])
        assert not f(0, msg(0, 1), 1)

    def test_reverse_direction_open(self):
        f = DropLinks([(0, 1)])
        assert f(0, msg(1, 0), 0)

    def test_other_links_open(self):
        f = DropLinks([(0, 1)])
        assert f(0, msg(0, 2), 2)

    def test_broadcast_copy_uses_receiver(self):
        # A broadcast message's dest field is BROADCAST; the filter sees
        # the concrete receiver.
        from repro.runtime.message import BROADCAST

        f = DropLinks([(3, 4)])
        m = Message(sender=3, dest=BROADCAST, payload=None)
        assert not f(0, m, 4)
        assert f(0, m, 5)
