"""Unit tests for fault-injection message filters."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.faults import (
    BurstLoss,
    CrashNodes,
    DropLinks,
    DropRandomMessages,
    DuplicateMessages,
    ReorderWithinRound,
    compose,
    deliver_all,
)
from repro.runtime.message import Message


def msg(sender=0, dest=1):
    return Message(sender=sender, dest=dest, payload=None)


class TestDeliverAll:
    def test_always_true(self):
        assert deliver_all(0, msg(), 1)
        assert deliver_all(99, msg(5, 6), 6)


class TestDropRandom:
    def test_zero_rate_never_drops(self):
        f = DropRandomMessages(0.0, seed=1)
        assert all(f(i, msg(), 1) for i in range(100))

    def test_one_rate_always_drops(self):
        f = DropRandomMessages(1.0, seed=1)
        assert not any(f(i, msg(), 1) for i in range(100))

    def test_rate_roughly_respected(self):
        f = DropRandomMessages(0.3, seed=7)
        delivered = sum(f(i, msg(), 1) for i in range(2000))
        assert 1250 < delivered < 1550

    def test_deterministic_per_seed(self):
        a = [DropRandomMessages(0.5, seed=3)(i, msg(), 1) for i in range(50)]
        b = [DropRandomMessages(0.5, seed=3)(i, msg(), 1) for i in range(50)]
        assert a == b

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            DropRandomMessages(1.5)
        with pytest.raises(ConfigurationError):
            DropRandomMessages(-0.1)


class TestDropLinks:
    def test_severed_link_blocked(self):
        f = DropLinks([(0, 1)])
        assert not f(0, msg(0, 1), 1)

    def test_reverse_direction_open(self):
        f = DropLinks([(0, 1)])
        assert f(0, msg(1, 0), 0)

    def test_other_links_open(self):
        f = DropLinks([(0, 1)])
        assert f(0, msg(0, 2), 2)

    def test_broadcast_copy_uses_receiver(self):
        # A broadcast message's dest field is BROADCAST; the filter sees
        # the concrete receiver.
        from repro.runtime.message import BROADCAST

        f = DropLinks([(3, 4)])
        m = Message(sender=3, dest=BROADCAST, payload=None)
        assert not f(0, m, 4)
        assert f(0, m, 5)


class TestDropLinksValidation:
    def test_undirected_blocks_both_directions(self):
        f = DropLinks([(0, 1)], undirected=True)
        assert not f(0, msg(0, 1), 1)
        assert not f(0, msg(1, 0), 0)
        assert f(0, msg(0, 2), 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            DropLinks([(2, 2)])

    def test_malformed_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            DropLinks([(1,)])
        with pytest.raises(ConfigurationError):
            DropLinks([(1, 2, 3)])

    def test_non_int_endpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            DropLinks([("a", 1)])
        with pytest.raises(ConfigurationError):
            DropLinks([(True, 1)])
        with pytest.raises(ConfigurationError):
            DropLinks([(-1, 1)])


class TestDuplicateMessages:
    def test_zero_rate_is_identity(self):
        f = DuplicateMessages(0.0, seed=1)
        assert all(f(i, msg(), 1) == 1 for i in range(100))

    def test_full_rate_duplicates_every_message(self):
        f = DuplicateMessages(1.0, copies=3, seed=1)
        assert all(f(i, msg(), 1) == 3 for i in range(100))

    def test_verdicts_are_ints_usable_as_booleans(self):
        f = DuplicateMessages(1.0, seed=1)
        verdict = f(0, msg(), 1)
        assert verdict == 2 and bool(verdict)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DuplicateMessages(-0.1)
        with pytest.raises(ConfigurationError):
            DuplicateMessages(0.5, copies=1)


class TestBurstLoss:
    def test_burst_drops_consecutive_messages_on_link(self):
        f = BurstLoss(1.0, burst_len=3, seed=1)
        # First verdict opens a burst on the (0, 1) link; the burst then
        # swallows the next messages on that same link.
        verdicts = [f(s, msg(0, 1), 1) for s in range(6)]
        assert not any(verdicts[:3])

    def test_bursts_are_per_link(self):
        f = BurstLoss(1.0, burst_len=4, seed=1)
        assert not f(0, msg(0, 1), 1)  # burst open on (0, 1)
        # an independent link draws its own burst state
        g = BurstLoss(0.0, burst_len=4, seed=1)
        assert g(0, msg(2, 3), 3)

    def test_zero_probability_never_drops(self):
        f = BurstLoss(0.0, seed=5)
        assert all(f(i, msg(), 1) for i in range(200))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BurstLoss(1.5)
        with pytest.raises(ConfigurationError):
            BurstLoss(0.1, burst_len=0)


class TestReorderWithinRound:
    def test_shuffles_in_place_deterministically(self):
        f = ReorderWithinRound(seed=3)
        inbox_a = [msg(s, 9) for s in range(8)]
        inbox_b = list(inbox_a)
        f.reorder_inbox(0, 9, inbox_a)
        ReorderWithinRound(seed=3).reorder_inbox(0, 9, inbox_b)
        assert inbox_a == inbox_b
        assert sorted(a.sender for a in inbox_a) == list(range(8))

    def test_delivery_verdict_is_always_true(self):
        f = ReorderWithinRound(seed=3)
        assert all(f(i, msg(), 1) for i in range(50))

    def test_zero_probability_preserves_order(self):
        f = ReorderWithinRound(p=0.0, seed=3)
        inbox = [msg(s, 9) for s in range(8)]
        f.reorder_inbox(0, 9, inbox)
        assert [m.sender for m in inbox] == list(range(8))


class TestCrashNodes:
    def test_schedule_from_mapping(self):
        f = CrashNodes({3: 10, 5: 2})
        assert list(f.crashes_at(2)) == [5]
        assert list(f.crashes_at(10)) == [3]
        assert not list(f.crashes_at(7))

    def test_schedule_from_pairs_earliest_wins(self):
        f = CrashNodes([(4, 9), (4, 3)])
        assert list(f.crashes_at(3)) == [4]
        assert not list(f.crashes_at(9))

    def test_never_drops_messages_itself(self):
        f = CrashNodes({1: 5})
        assert all(f(i, msg(), 1) for i in range(20))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashNodes({-1: 5})
        with pytest.raises(ConfigurationError):
            CrashNodes({1: -2})
        with pytest.raises(ConfigurationError):
            CrashNodes({True: 5})

    def test_random_schedule_fraction_and_window(self):
        f = CrashNodes.random(100, 0.1, window=(5, 20), seed=3)
        crashed = [u for s in range(100) for u in f.crashes_at(s)]
        assert len(crashed) == 10
        assert len(set(crashed)) == 10
        supersteps = [s for s in range(100) if f.crashes_at(s)]
        assert all(5 <= s <= 20 for s in supersteps)

    def test_random_is_deterministic(self):
        a = CrashNodes.random(50, 0.2, seed=9)
        b = CrashNodes.random(50, 0.2, seed=9)
        assert all(a.crashes_at(s) == b.crashes_at(s) for s in range(120))


class TestCompose:
    def test_any_drop_wins(self):
        f = compose(DuplicateMessages(1.0, seed=1), DropRandomMessages(1.0, seed=2))
        assert not f(0, msg(), 1)

    def test_duplication_survives_composition(self):
        f = compose(DropRandomMessages(0.0, seed=1), DuplicateMessages(1.0, copies=4, seed=2))
        assert f(0, msg(), 1) == 4

    def test_max_duplication_factor_wins(self):
        f = compose(
            DuplicateMessages(1.0, copies=2, seed=1),
            DuplicateMessages(1.0, copies=5, seed=2),
        )
        assert f(0, msg(), 1) == 5

    def test_plain_delivery_verdict_is_true(self):
        f = compose(DropRandomMessages(0.0, seed=1), DropRandomMessages(0.0, seed=2))
        assert f(0, msg(), 1) is True

    def test_crash_schedules_union(self):
        f = compose(CrashNodes({1: 5}), CrashNodes({2: 7}), DropRandomMessages(0.0))
        assert sorted(f.crashes_at(5)) == [1]
        assert sorted(f.crashes_at(7)) == [2]

    def test_reorder_hook_exposed(self):
        f = compose(DropRandomMessages(0.0), ReorderWithinRound(seed=1))
        inbox = [msg(s, 9) for s in range(6)]
        f.reorder_inbox(0, 9, inbox)
        assert sorted(m.sender for m in inbox) == list(range(6))

    def test_no_optional_hooks_when_absent(self):
        f = compose(DropRandomMessages(0.0), DropRandomMessages(0.0))
        assert not hasattr(f, "crashes_at")
        assert not hasattr(f, "reorder_inbox")

    def test_single_model_composition_matches_inner(self):
        inner = DropRandomMessages(0.3, seed=1)
        alone = DropRandomMessages(0.3, seed=1)
        f = compose(inner)
        assert [bool(f(i, msg(), 1)) for i in range(50)] == [
            bool(alone(i, msg(), 1)) for i in range(50)
        ]
