"""Unit tests for `repro top`, `repro trace flame`, and the chaos
observability flags (`--metrics-out` / `--ring`)."""

import json

import pytest

from repro.cli import (
    build_top_parser,
    chaos_main,
    repro_main,
    top_main,
    trace_main,
)
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.graphs.io import write_edge_list
from repro.obs import SnapshotPublisher, parse_openmetrics, read_ring


@pytest.fixture
def graph_file(tmp_path):
    g = erdos_renyi_avg_degree(24, 4.0, seed=3)
    path = tmp_path / "net.edges"
    write_edge_list(g, path)
    return path


@pytest.fixture
def ring_file(tmp_path):
    pub = SnapshotPublisher(
        tmp_path / "ring.jsonl", interval=0.0, meta={"label": "test run"}
    )
    pub.publish({"superstep": 0, "live": 24, "messages_sent": 0,
                 "colored_fraction": 0.0})
    pub.publish({"superstep": 20, "live": 20, "messages_sent": 900,
                 "colored_fraction": 0.5})
    return pub


class TestTopParser:
    def test_defaults(self, tmp_path):
        args = build_top_parser().parse_args([str(tmp_path / "r.jsonl")])
        assert args.interval == 0.5
        assert args.once is False
        assert args.timeout is None
        assert args.color is False

    def test_ring_required(self):
        with pytest.raises(SystemExit):
            build_top_parser().parse_args([])


class TestTopMain:
    def test_once_renders_current_window(self, ring_file, capsys):
        assert top_main([str(ring_file.path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "test run [running]" in out
        assert "50.00%" in out
        assert "superstep 20" in out

    def test_once_with_missing_file(self, tmp_path, capsys):
        assert top_main([str(tmp_path / "absent.jsonl"), "--once"]) == 0
        assert "no snapshots yet" in capsys.readouterr().out

    def test_loop_exits_on_final_snapshot(self, ring_file, capsys):
        ring_file.close({"superstep": 24, "outcome": "completed"})
        assert top_main([str(ring_file.path), "--interval", "0.01"]) == 0
        assert "[FINISHED]" in capsys.readouterr().out

    def test_loop_times_out_without_final(self, ring_file, capsys):
        rc = top_main(
            [str(ring_file.path), "--interval", "0.01", "--timeout", "0.05"]
        )
        assert rc == 0
        assert "running" in capsys.readouterr().out

    def test_color_flag(self, ring_file, capsys):
        assert top_main([str(ring_file.path), "--once", "--color"]) == 0
        assert "\x1b[" in capsys.readouterr().out

    def test_repro_dispatches_top(self, ring_file, capsys):
        assert repro_main(["top", str(ring_file.path), "--once"]) == 0
        assert "test run" in capsys.readouterr().out

    def test_top_listed_in_commands(self, capsys):
        with pytest.raises(SystemExit):
            repro_main(["--help"])
        assert "top" in capsys.readouterr().out


class TestTraceFlame:
    def test_writes_valid_speedscope(self, graph_file, tmp_path, capsys):
        out = tmp_path / "flame.json"
        rc = trace_main(
            ["flame", str(graph_file), "--seed", "5", "--out", str(out)]
        )
        assert rc == 0
        assert "supersteps" in capsys.readouterr().err
        doc = json.loads(out.read_text())
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        (profile,) = doc["profiles"]
        assert profile["type"] == "evented"
        assert profile["events"]
        # events nest and timestamps never go backwards
        stack, last_at = [], 0.0
        for event in profile["events"]:
            assert event["at"] >= last_at
            last_at = event["at"]
            if event["type"] == "O":
                stack.append(event["frame"])
            else:
                assert stack.pop() == event["frame"]
        assert not stack

    def test_dima2ed_flame(self, graph_file, tmp_path):
        out = tmp_path / "flame.json"
        rc = trace_main(
            ["flame", str(graph_file), "--algorithm", "dima2ed",
             "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()

    def test_out_required(self, graph_file):
        with pytest.raises(SystemExit):
            trace_main(["flame", str(graph_file)])


class TestChaosObservability:
    def test_metrics_out_parses_and_ring_finishes(
        self, graph_file, tmp_path, capsys
    ):
        metrics = tmp_path / "chaos.om"
        ring = tmp_path / "chaos-ring.jsonl"
        rc = chaos_main(
            [str(graph_file), "--runs", "1", "--seed", "2", "--quiet",
             "--classes", "loss",
             "--metrics-out", str(metrics), "--ring", str(ring)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "OpenMetrics export written" in out
        families = parse_openmetrics(metrics.read_text())
        assert "repro_chaos_runs" in families
        assert "repro_supervised_runs" in families
        records = read_ring(ring)
        assert records[-1]["snapshot"]["final"] is True
