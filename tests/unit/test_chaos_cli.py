"""Tests for the ``repro chaos`` subcommand."""

import json

import pytest

from repro.cli import build_chaos_parser, chaos_main, repro_main
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.graphs.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "net.edges"
    write_edge_list(erdos_renyi_avg_degree(40, 4.0, seed=1), path)
    return path


class TestParser:
    def test_defaults(self):
        args = build_chaos_parser().parse_args([])
        assert args.budget is None and args.runs is None
        assert args.nodes == 1000 and args.family == "erdos_renyi"

    def test_budget_suffixes(self):
        args = build_chaos_parser().parse_args(["--budget", "2m"])
        assert args.budget == 120.0

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_chaos_parser().parse_args(["--family", "torus"])


class TestMain:
    def test_generated_graph_campaign(self, capsys):
        code = chaos_main(
            ["--runs", "2", "--nodes", "60", "--degree", "4", "--seed", "3",
             "--quiet"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "survivability: 100.0%" in out
        assert "monitor violations: 0" in out

    def test_graph_file_and_json_artifact(self, graph_file, tmp_path, capsys):
        report_path = tmp_path / "out" / "chaos.json"
        code = chaos_main(
            ["--runs", "1", "--classes", "loss", "--seed", "5", "--quiet",
             "--json", str(report_path), str(graph_file)]
        )
        assert code == 0
        data = json.loads(report_path.read_text())
        assert data["runs"] == 1
        assert data["graph"]["nodes"] == 40
        assert data["records"][0]["fault_class"] == "loss"
        assert "written to" in capsys.readouterr().out

    def test_bad_class_is_a_usage_error(self, capsys):
        code = chaos_main(["--runs", "1", "--classes", "gamma-rays"])
        assert code == 2
        assert "gamma-rays" in capsys.readouterr().err

    def test_umbrella_dispatch(self, capsys):
        code = repro_main(
            ["chaos", "--runs", "1", "--classes", "reorder", "--nodes", "40",
             "--degree", "4", "--quiet"]
        )
        assert code == 0
        assert "Chaos campaign" in capsys.readouterr().out
