"""Unit tests for the metrics registry (repro.obs.registry)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RUN_COUNTERS,
    observe_run_metrics,
)


class TestCounter:
    def test_inc_and_add(self):
        c = Counter("repro_events", "events")
        c.inc()
        c.inc(2.5)
        reg = MetricsRegistry()
        reg._families["repro_events"] = c
        (sample,) = reg.snapshot()["repro_events"]["samples"]
        assert sample["value"] == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("repro_events", "events")
        with pytest.raises(ConfigurationError):
            c.inc(-1)
        labelled = Counter("repro_by_kind", "events", ("kind",))
        with pytest.raises(ConfigurationError):
            labelled.add(-0.5, kind="x")

    def test_labelled_children_are_cached(self):
        c = Counter("repro_by_kind", "events", ("kind",))
        child = c.labels(kind="a")
        assert c.labels(kind="a") is child
        child.value += 7
        assert c.labels(kind="a").value == 7

    def test_wrong_label_set_rejected(self):
        c = Counter("repro_by_kind", "events", ("kind",))
        with pytest.raises(ConfigurationError):
            c.labels(other="a")
        with pytest.raises(ConfigurationError):
            c.labels()


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("repro_live", "live nodes")
        g.set(10)
        g.set(4)
        assert g.labels().value == 4

    def test_set_labels(self):
        g = Gauge("repro_frac", "fraction", ("tier",))
        g.set_labels(0.5, tier="fast")
        g.set_labels(0.75, tier="fast")
        g.set_labels(0.25, tier="batched")
        assert g.labels(tier="fast").value == 0.75
        assert g.labels(tier="batched").value == 0.25


class TestHistogram:
    def test_bucketing_and_cumulative(self):
        h = Histogram("repro_lat", "latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        child = h.labels()
        # per-bucket: <=0.1 -> 1, <=1.0 -> 2, <=10.0 -> 1, +Inf -> 1
        assert child.bucket_counts == [1, 2, 1, 1]
        assert child.cumulative() == [1, 3, 4, 5]
        assert child.count == 5
        assert child.sum == pytest.approx(56.05)

    def test_boundary_value_lands_in_its_bucket(self):
        # le is inclusive: an observation equal to a bound counts there.
        h = Histogram("repro_lat", "latency", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.labels().bucket_counts == [1, 0, 0]

    def test_bad_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("repro_lat", "latency", buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("repro_lat", "latency", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("repro_lat", "latency", buckets=(1.0, 1.0))

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x", "x", ("kind",))
        b = reg.counter("repro_x", "different help ok", ("kind",))
        assert a is b
        assert len(reg) == 1
        assert "repro_x" in reg

    def test_mismatched_reregistration_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x", "x")
        with pytest.raises(ConfigurationError):
            reg.gauge("repro_x", "x")
        with pytest.raises(ConfigurationError):
            reg.counter("repro_x", "x", ("kind",))
        reg.histogram("repro_h", "h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_h", "h", buckets=(1.0, 3.0))

    @pytest.mark.parametrize("bad", ["", "9starts_with_digit", "has-dash", "has space"])
    def test_invalid_names_rejected(self, bad):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter(bad, "x")

    def test_snapshot_order_is_deterministic(self):
        def build(order):
            reg = MetricsRegistry()
            for name in order:
                reg.counter(name, "c", ("kind",))
            # update in the given order too
            for name in order:
                reg.counter(name, "c", ("kind",)).add(1, kind=name[-1])
                reg.counter(name, "c", ("kind",)).add(1, kind="z")
            return reg.snapshot()

        forward = build(["repro_b", "repro_a", "repro_c"])
        backward = build(["repro_c", "repro_a", "repro_b"])
        assert forward == backward
        assert list(forward) == sorted(forward)
        for family in forward.values():
            values = [tuple(s["labels"].values()) for s in family["samples"]]
            assert values == sorted(values)

    def test_histogram_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.histogram("repro_h", "h", buckets=(1.0, 2.0)).observe(1.5)
        (sample,) = reg.snapshot()["repro_h"]["samples"]
        assert sample["bounds"] == [1.0, 2.0]
        assert sample["buckets"] == [0, 1, 1]  # cumulative, +Inf last
        assert sample["count"] == 1
        assert sample["sum"] == pytest.approx(1.5)


class _FakeMetrics:
    """RunMetrics-shaped stand-in (as_dict / phase_seconds / live_nodes_peak)."""

    def __init__(self, counters, phase_seconds=None, live_nodes_peak=0):
        self._counters = counters
        self.phase_seconds = phase_seconds or {}
        self.live_nodes_peak = live_nodes_peak

    def as_dict(self):
        return dict(self._counters)


class TestObserveRunMetrics:
    def test_folds_counters_and_peak(self):
        reg = MetricsRegistry()
        metrics = _FakeMetrics(
            {"supersteps": 12, "messages_sent": 100, "messages_dropped": 0},
            phase_seconds={"compute": 0.5, "delivery": 0.25},
            live_nodes_peak=42,
        )
        observe_run_metrics(reg, metrics, {"tier": "fast"})
        snap = reg.snapshot()
        runs = snap["repro_runs"]["samples"]
        assert runs == [{"labels": {"tier": "fast"}, "value": 1.0}]
        assert snap["repro_supersteps"]["samples"][0]["value"] == 12
        assert snap["repro_messages_sent"]["samples"][0]["value"] == 100
        # zero-valued counters are not materialized
        assert "repro_messages_dropped" not in snap
        assert snap["repro_live_nodes_peak"]["samples"][0]["value"] == 42
        phases = {
            s["labels"]["phase"]: s["value"]
            for s in snap["repro_phase_seconds"]["samples"]
        }
        assert phases == {"compute": 0.5, "delivery": 0.25}

    def test_accumulates_across_runs(self):
        reg = MetricsRegistry()
        for _ in range(3):
            observe_run_metrics(reg, _FakeMetrics({"supersteps": 10}))
        snap = reg.snapshot()
        assert snap["repro_runs"]["samples"][0]["value"] == 3
        assert snap["repro_supersteps"]["samples"][0]["value"] == 30

    def test_real_run_metrics_fold(self):
        from repro.core.edge_coloring import color_edges
        from repro.graphs.generators import erdos_renyi_avg_degree

        result = color_edges(erdos_renyi_avg_degree(60, 4.0, seed=1), seed=0)
        reg = MetricsRegistry()
        observe_run_metrics(reg, result.metrics, {"algorithm": "alg1"})
        snap = reg.snapshot()
        assert snap["repro_supersteps"]["samples"][0]["value"] == result.supersteps
        assert (
            snap["repro_messages_sent"]["samples"][0]["value"]
            == result.metrics.messages_sent
        )

    def test_run_counter_names_cover_transport_and_faults(self):
        # The fold is the single instrumentation point for every tier:
        # its mapping must include the transport and fault-layer counters.
        names = {metric for metric, _ in RUN_COUNTERS.values()}
        assert "repro_transport_retransmissions" in names
        assert "repro_messages_lost_to_crash" in names
        assert "repro_messages_duplicated" in names
