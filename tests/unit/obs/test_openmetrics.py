"""Unit tests for OpenMetrics rendering/parsing (repro.obs.openmetrics)."""

import pytest

from repro.obs.openmetrics import (
    OpenMetricsParseError,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.registry import MetricsRegistry


def _registry():
    reg = MetricsRegistry()
    reg.counter("repro_msgs", "messages sent", ("tier",)).add(5, tier="fast")
    reg.counter("repro_msgs", "messages sent", ("tier",)).add(7, tier="batched")
    reg.gauge("repro_live", "live nodes").set(42)
    h = reg.histogram("repro_lat", "latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestRender:
    def test_counter_total_suffix_and_gauge_bare(self):
        text = render_openmetrics(_registry().snapshot())
        assert '# TYPE repro_msgs counter' in text
        assert 'repro_msgs_total{tier="batched"} 7' in text
        assert 'repro_msgs_total{tier="fast"} 5' in text
        assert "# TYPE repro_live gauge" in text
        assert "repro_live 42" in text
        assert text.endswith("# EOF\n")

    def test_histogram_cumulative_buckets(self):
        text = render_openmetrics(_registry().snapshot())
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 5.55" in text
        assert "repro_lat_count 3" in text

    def test_label_values_sorted_within_family(self):
        text = render_openmetrics(_registry().snapshot())
        assert text.index('tier="batched"') < text.index('tier="fast"')

    def test_byte_equal_for_equal_state(self):
        def build(order):
            reg = MetricsRegistry()
            for tier, amount in order:
                reg.counter("repro_msgs", "m", ("tier",)).add(amount, tier=tier)
            reg.gauge("repro_live", "l").set(3)
            return render_openmetrics(reg.snapshot())

        assert build([("a", 1), ("b", 2)]) == build([("b", 2), ("a", 1)])

    def test_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_weird", 'help with \\ and\nnewline', ("path",)
        ).add(1, path='va"l\\ue\nx')
        text = render_openmetrics(reg.snapshot())
        families = parse_openmetrics(text)
        assert families["repro_weird"]["help"] == 'help with \\ and\nnewline'
        (sample,) = families["repro_weird"]["samples"]
        assert sample["labels"] == {"path": 'va"l\\ue\nx'}
        assert sample["value"] == 1


class TestParse:
    def test_round_trip_values(self):
        families = parse_openmetrics(render_openmetrics(_registry().snapshot()))
        assert families["repro_live"]["type"] == "gauge"
        assert families["repro_live"]["samples"][0]["value"] == 42
        by_tier = {
            s["labels"]["tier"]: s["value"]
            for s in families["repro_msgs"]["samples"]
        }
        assert by_tier == {"fast": 5, "batched": 7}

    def test_missing_eof_rejected(self):
        with pytest.raises(OpenMetricsParseError, match="EOF"):
            parse_openmetrics("# TYPE x counter\nx_total 1\n")

    def test_content_after_eof_rejected(self):
        with pytest.raises(OpenMetricsParseError, match="after # EOF"):
            parse_openmetrics("# TYPE x counter\nx_total 1\n# EOF\nx_total 2\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(OpenMetricsParseError, match="duplicate TYPE"):
            parse_openmetrics("# TYPE x counter\n# TYPE x counter\n# EOF\n")

    def test_undeclared_sample_rejected(self):
        with pytest.raises(OpenMetricsParseError, match="no TYPE"):
            parse_openmetrics("x_total 1\n# EOF\n")

    def test_suffix_must_match_type(self):
        # a counter sample without _total
        with pytest.raises(OpenMetricsParseError, match="suffix"):
            parse_openmetrics("# TYPE x counter\nx 1\n# EOF\n")
        # a gauge sample with _total
        with pytest.raises(OpenMetricsParseError, match="no TYPE|suffix"):
            parse_openmetrics("# TYPE y gauge\ny_total 1\n# EOF\n")

    def test_non_monotone_bucket_series_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsParseError, match="monotone"):
            parse_openmetrics(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsParseError, match=r"\+Inf"):
            parse_openmetrics(text)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 4\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsParseError, match="!= count"):
            parse_openmetrics(text)

    def test_duplicate_label_rejected(self):
        with pytest.raises(OpenMetricsParseError, match="duplicate label"):
            parse_openmetrics(
                '# TYPE x counter\nx_total{a="1",a="2"} 1\n# EOF\n'
            )
