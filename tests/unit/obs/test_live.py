"""Unit tests for live monitoring (repro.obs.live)."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.live import (
    SnapshotPublisher,
    peak_rss_kb,
    read_ring,
    render_dashboard,
)

REPO_ROOT = Path(__file__).resolve().parents[3]


class TestPeakRss:
    def test_plausible_magnitude(self):
        kb = peak_rss_kb()
        assert isinstance(kb, int)
        # tens of MiB for a pytest process; a bytes reading would be ~1000x
        assert 1_000 < kb < 100 * 1024 * 1024

    def test_agrees_with_benchlib_copy(self):
        # benchlib keeps a self-contained copy of the same contract
        # (bench scripts run without the package installed); pin the two.
        spec = importlib.util.spec_from_file_location(
            "benchlib", REPO_ROOT / "benchmarks" / "benchlib.py"
        )
        benchlib = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(benchlib)
        ours = peak_rss_kb()
        theirs = benchlib.peak_rss_kb()
        # same process, same instant — identical up to allocation noise
        assert abs(ours - theirs) < 1024


class TestSnapshotPublisher:
    def test_throttles_by_interval(self, tmp_path):
        pub = SnapshotPublisher(tmp_path / "ring.jsonl", interval=3600.0)
        assert pub.ready()
        assert pub.publish({"superstep": 0}) is True
        assert pub.ready() is False
        assert pub.publish({"superstep": 1}) is False
        assert pub.publish({"superstep": 2}, force=True) is True

    def test_zero_interval_publishes_every_offer(self, tmp_path):
        pub = SnapshotPublisher(tmp_path / "ring.jsonl", interval=0.0)
        for step in range(5):
            assert pub.publish({"superstep": step}) is True
        steps = [r["snapshot"]["superstep"] for r in read_ring(pub.path)]
        assert steps == [0, 1, 2, 3, 4]

    def test_capacity_bounds_ring(self, tmp_path):
        pub = SnapshotPublisher(tmp_path / "ring.jsonl", interval=0.0, capacity=3)
        for step in range(10):
            pub.publish({"superstep": step})
        records = read_ring(pub.path)
        assert [r["snapshot"]["superstep"] for r in records] == [7, 8, 9]
        assert [r["seq"] for r in records] == [7, 8, 9]

    def test_close_marks_final_and_stops(self, tmp_path):
        pub = SnapshotPublisher(tmp_path / "ring.jsonl", interval=0.0)
        pub.publish({"superstep": 0})
        pub.close({"superstep": 1, "outcome": "converged"})
        assert pub.ready() is False
        assert pub.publish({"superstep": 2}) is False
        last = read_ring(pub.path)[-1]
        assert last["snapshot"]["final"] is True
        assert last["snapshot"]["outcome"] == "converged"
        pub.close()  # idempotent

    def test_context_manager_finalizes(self, tmp_path):
        with SnapshotPublisher(tmp_path / "ring.jsonl", interval=0.0) as pub:
            pub.publish({"superstep": 0})
        assert read_ring(pub.path)[-1]["snapshot"]["final"] is True

    def test_meta_travels_with_records(self, tmp_path):
        pub = SnapshotPublisher(
            tmp_path / "ring.jsonl", interval=0.0, meta={"label": "unit"}
        )
        pub.publish({"superstep": 0})
        assert read_ring(pub.path)[0]["meta"] == {"label": "unit"}

    def test_records_carry_rss_and_wall(self, tmp_path):
        pub = SnapshotPublisher(tmp_path / "ring.jsonl", interval=0.0)
        pub.publish({"superstep": 0})
        (record,) = read_ring(pub.path)
        assert record["peak_rss_kb"] > 0
        assert record["wall_s"] >= 0.0

    def test_ring_file_is_valid_jsonl(self, tmp_path):
        pub = SnapshotPublisher(tmp_path / "ring.jsonl", interval=0.0)
        for step in range(4):
            pub.publish({"superstep": step})
        for line in open(pub.path):
            json.loads(line)

    def test_bad_capacity_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotPublisher(tmp_path / "ring.jsonl", capacity=0)


def _window(tmp_path, snapshots, meta=None):
    pub = SnapshotPublisher(tmp_path / "ring.jsonl", interval=0.0, meta=meta)
    for snap in snapshots:
        pub.publish(snap)
    return read_ring(pub.path)


class TestRenderDashboard:
    def test_empty_window(self):
        assert "no snapshots yet" in render_dashboard([])

    def test_full_snapshot_renders_all_lines(self, tmp_path):
        records = _window(
            tmp_path,
            [
                {"superstep": 0, "live": 100, "messages_sent": 0,
                 "colored_fraction": 0.0},
                {"superstep": 40, "live": 90, "messages_sent": 4000,
                 "colored_fraction": 0.5},
            ],
            meta={"label": "unit run", "seed": 7},
        )
        # pin wall clocks so the rate lines are deterministic
        records[0]["wall_s"] = 0.0
        records[-1]["wall_s"] = 10.0
        text = render_dashboard(records, now=records[-1]["t"])
        assert "unit run [running]" in text
        assert "seed=7" in text
        assert "50.00%" in text
        assert "round    10 (superstep 40)" in text
        assert "live     90 nodes" in text
        assert "rounds/s 1.0" in text  # 40 supersteps / 10s / 4 per round
        assert "msgs/s   400" in text
        assert "peak RSS" in text
        assert "(stale)" not in text

    def test_final_snapshot_shows_finished(self, tmp_path):
        records = _window(tmp_path, [{"superstep": 8, "final": True}])
        assert "[FINISHED]" in render_dashboard(records)

    def test_stale_marker(self, tmp_path):
        records = _window(tmp_path, [{"superstep": 8}])
        text = render_dashboard(records, now=records[-1]["t"] + 60.0)
        assert "(stale)" in text

    def test_supervisor_fields(self, tmp_path):
        records = _window(
            tmp_path,
            [{"superstep": 100, "leg": 2, "plateau_remaining": 37,
              "deadline_remaining_s": 12.5}],
        )
        text = render_dashboard(records)
        assert "leg      2" in text
        assert "plateau  37 supersteps" in text
        assert "deadline 12.5s remaining" in text

    def test_color_flag_emits_ansi(self, tmp_path):
        records = _window(tmp_path, [{"colored_fraction": 1.0, "superstep": 4}])
        assert "\x1b[32m" in render_dashboard(records, color=True)
        assert "\x1b" not in render_dashboard(records, color=False)


class TestZeroElapsedRateGuard:
    """Regression: two snapshots in the same clock tick must render a
    ``--`` placeholder instead of a bogus (or crashing) rate."""

    def test_same_tick_window_renders_placeholders(self, tmp_path):
        records = _window(
            tmp_path,
            [
                {"superstep": 0, "messages_sent": 0},
                {"superstep": 40, "messages_sent": 4000},
            ],
        )
        # Force a zero elapsed-time delta across the window.
        for r in records:
            r["wall_s"] = 1.234567
        text = render_dashboard(records, now=records[-1]["t"])
        assert "rounds/s --" in text
        assert "msgs/s   --" in text
        assert "ZeroDivision" not in text

    def test_single_sample_omits_rate_rows(self, tmp_path):
        records = _window(tmp_path, [{"superstep": 8, "messages_sent": 10}])
        text = render_dashboard(records, now=records[-1]["t"])
        assert "rounds/s" not in text
        assert "msgs/s" not in text

    def test_negative_delta_also_guarded(self, tmp_path):
        # A clock that runs backwards (coarse timers, ntp steps) must
        # not produce a negative rate.
        records = _window(
            tmp_path,
            [
                {"superstep": 0, "messages_sent": 0},
                {"superstep": 40, "messages_sent": 4000},
            ],
        )
        records[0]["wall_s"] = 5.0
        records[-1]["wall_s"] = 4.0
        text = render_dashboard(records, now=records[-1]["t"])
        assert "rounds/s --" in text
        assert "msgs/s   --" in text

    def test_normal_window_unaffected(self, tmp_path):
        records = _window(
            tmp_path,
            [
                {"superstep": 0, "messages_sent": 0},
                {"superstep": 40, "messages_sent": 4000},
            ],
        )
        records[0]["wall_s"] = 0.0
        records[-1]["wall_s"] = 10.0
        text = render_dashboard(records, now=records[-1]["t"])
        assert "rounds/s 1.0" in text
        assert "--" not in text
