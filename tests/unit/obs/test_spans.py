"""Unit tests for the span profiler / flamegraph export (repro.obs.spans)."""

import json

import pytest

from repro.obs.spans import PHASES_PER_ROUND, SpanProfiler
from repro.runtime.observe import PhaseProfiler


def _nesting_ok(events):
    """Validate the speedscope event stream: LIFO nesting, monotone at."""
    stack = []
    last_at = 0.0
    for event in events:
        assert event["at"] >= last_at
        last_at = event["at"]
        if event["type"] == "O":
            stack.append(event["frame"])
        else:
            assert stack and stack[-1] == event["frame"]
            stack.pop()
    return not stack


class TestSpanRecording:
    def test_is_a_phase_profiler(self):
        prof = SpanProfiler()
        assert isinstance(prof, PhaseProfiler)
        prof.add("compute", 0.5)
        prof.add("compute", 0.25)
        assert prof.as_dict()["compute"] == pytest.approx(0.75)

    def test_begin_superstep_groups_phases(self):
        prof = SpanProfiler()
        prof.begin_superstep(0)
        prof.add("delivery", 0.1)
        prof.add("compute", 0.2)
        prof.begin_superstep(1)
        prof.add("compute", 0.3)
        assert prof.superstep_count == 2
        assert prof.spans() == [
            {"superstep": 0, "phase": "delivery", "seconds": 0.1},
            {"superstep": 0, "phase": "compute", "seconds": 0.2},
            {"superstep": 1, "phase": "compute", "seconds": 0.3},
        ]

    def test_add_without_begin_opens_implicit_superstep(self):
        prof = SpanProfiler()
        prof.add("compute", 0.5)
        assert prof.superstep_count == 1
        assert prof.spans()[0]["superstep"] == 0

    def test_negative_elapsed_clamped_in_spans_only(self):
        prof = SpanProfiler()
        prof.add("compute", -0.5)
        assert prof.spans()[0]["seconds"] == 0.0

    def test_round_size_validation(self):
        with pytest.raises(ValueError):
            SpanProfiler(round_size=0)


class TestSpeedscopeExport:
    def _profiler(self):
        prof = SpanProfiler()
        for superstep in range(8):  # two full rounds at round_size=4
            prof.begin_superstep(superstep)
            prof.add("delivery", 0.001 * (superstep + 1))
            prof.add("compute", 0.002)
        return prof

    def test_schema_and_units(self):
        doc = self._profiler().to_speedscope("test run")
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        (profile,) = doc["profiles"]
        assert profile["type"] == "evented"
        assert profile["unit"] == "seconds"
        assert profile["startValue"] == 0.0

    def test_events_nest_and_timestamps_monotone(self):
        doc = self._profiler().to_speedscope()
        assert _nesting_ok(doc["profiles"][0]["events"])

    def test_end_value_is_total_profiled_time(self):
        prof = self._profiler()
        total = sum(span["seconds"] for span in prof.spans())
        assert prof.to_speedscope()["profiles"][0]["endValue"] == pytest.approx(total)

    def test_rounds_group_supersteps(self):
        doc = self._profiler().to_speedscope()
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert "round 0" in names and "round 1" in names
        assert "round 2" not in names  # 8 supersteps = exactly 2 rounds
        assert PHASES_PER_ROUND == 4

    def test_custom_round_size(self):
        prof = SpanProfiler(round_size=2)
        for superstep in range(4):
            prof.begin_superstep(superstep)
            prof.add("compute", 0.001)
        names = [f["name"] for f in prof.to_speedscope()["shared"]["frames"]]
        assert "round 0" in names and "round 1" in names

    def test_write_speedscope_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "flame.json"
        written = self._profiler().write_speedscope(path, name="roundtrip")
        doc = json.loads(open(written).read())
        assert doc["name"] == "roundtrip"
        assert _nesting_ok(doc["profiles"][0]["events"])

    def test_empty_profiler_exports_valid_doc(self):
        doc = SpanProfiler().to_speedscope()
        events = doc["profiles"][0]["events"]
        # just the run open/close pair
        assert [e["type"] for e in events] == ["O", "C"]
        assert doc["profiles"][0]["endValue"] == 0.0


class TestEngineIntegration:
    def test_engine_announces_supersteps(self):
        from repro.core.edge_coloring import color_edges
        from repro.graphs.generators import erdos_renyi_avg_degree

        g = erdos_renyi_avg_degree(60, 4.0, seed=1)
        prof = SpanProfiler()
        result = color_edges(g, seed=0, compute="pernode", profiler=prof)
        # the per-node loops announce every superstep
        assert prof.superstep_count == result.supersteps
        assert _nesting_ok(prof.to_speedscope()["profiles"][0]["events"])

    def test_fused_kernel_announces_rounds(self):
        from repro.core.edge_coloring import color_edges
        from repro.graphs.generators import erdos_renyi_avg_degree

        g = erdos_renyi_avg_degree(60, 4.0, seed=1)
        prof = SpanProfiler()
        result = color_edges(g, seed=0, profiler=prof)
        # the fused round loop opens one span per round (4 supersteps)
        assert prof.superstep_count > 0
        assert prof.superstep_count <= result.supersteps
