"""No-observer-effect pins: attaching the full observability stack —
telemetry, span profiler, snapshot publisher, registry fold — must leave
a run bit-identical to a bare one on every compute tier.

``benchmarks/bench_obs_overhead.py`` gates the wall-clock side of the
same contract at production size; these tests pin the bit-identity side
at unit-test size.
"""

import pytest

from repro.core.edge_coloring import color_edges
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.obs import (
    MetricsRegistry,
    SnapshotPublisher,
    SpanProfiler,
    observe_run_metrics,
    read_ring,
)
from repro.runtime.observe import AutomatonTelemetry


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_avg_degree(150, 6.0, seed=2)


def _bare(graph, **kwargs):
    result = color_edges(graph, seed=0, **kwargs)
    return result.colors, result.supersteps, result.metrics.as_dict()


def _observed(graph, tmp_path, **kwargs):
    telemetry = AutomatonTelemetry()
    prof = SpanProfiler()
    pub = SnapshotPublisher(tmp_path / "ring.jsonl", interval=0.0)
    result = color_edges(
        graph, seed=0, telemetry=telemetry, profiler=prof,
        publisher=pub, **kwargs
    )
    pub.close()
    registry = MetricsRegistry()
    observe_run_metrics(registry, result.metrics)
    metrics = dict(result.metrics.as_dict())
    metrics.pop("phase_seconds", None)  # profiling adds timings, not counts
    return result.colors, result.supersteps, metrics, pub


@pytest.mark.parametrize("compute", ["auto", "pernode", "batched"])
def test_observed_run_is_bit_identical(graph, tmp_path, compute):
    colors, supersteps, metrics = _bare(graph, compute=compute)
    metrics = {k: v for k, v in metrics.items() if k != "phase_seconds"}
    obs_colors, obs_supersteps, obs_metrics, _ = _observed(
        graph, tmp_path, compute=compute
    )
    assert obs_colors == colors
    assert obs_supersteps == supersteps
    assert obs_metrics == metrics


def test_publisher_saw_live_snapshots(graph, tmp_path):
    _, supersteps, _, pub = _observed(graph, tmp_path)
    records = read_ring(pub.path)
    assert records, "interval=0 publisher must write snapshots"
    assert records[-1]["snapshot"]["final"] is True
    live_steps = [
        r["snapshot"]["superstep"]
        for r in records
        if "superstep" in r["snapshot"]
    ]
    assert live_steps == sorted(live_steps)
    assert live_steps and live_steps[-1] <= supersteps
    # live colored-fraction comes from the attached telemetry
    fractions = [
        r["snapshot"]["colored_fraction"]
        for r in records
        if "colored_fraction" in r["snapshot"]
    ]
    assert fractions and all(0.0 <= f <= 1.0 for f in fractions)


def test_supervised_run_publishes_and_folds(tmp_path):
    from repro.resilience.supervisor import supervise_edge_coloring

    g = erdos_renyi_avg_degree(80, 4.0, seed=3)
    registry = MetricsRegistry()
    pub = SnapshotPublisher(tmp_path / "sup.jsonl", interval=0.0)
    result = supervise_edge_coloring(
        g, seed=0, registry=registry, publisher=pub
    )
    assert result.outcome == "completed"
    records = read_ring(pub.path)
    assert records[-1]["snapshot"]["final"] is True
    assert records[-1]["snapshot"]["outcome"] == "completed"
    snap = registry.snapshot()
    (runs,) = snap["repro_supervised_runs"]["samples"]
    assert runs["labels"] == {"outcome": "completed"}
    assert runs["value"] == 1
    assert "repro_supervised_wall_seconds" in snap


def test_chaos_campaign_folds_records(tmp_path):
    from repro.resilience.chaos import ChaosConfig, chaos_campaign

    registry = MetricsRegistry()
    config = ChaosConfig(
        budget_seconds=None, max_runs=2, seed=1, nodes=60, avg_degree=4.0,
        fault_classes=("loss",),
    )
    report = chaos_campaign(None, config=config, registry=registry)
    assert report.runs == 2
    snap = registry.snapshot()
    total = sum(s["value"] for s in snap["repro_chaos_runs"]["samples"])
    assert total == 2
    for sample in snap["repro_chaos_runs"]["samples"]:
        assert sample["labels"]["fault_class"] == "loss"
