"""Unit tests for the JSONL metrics time series (repro.obs.series)."""

import json

from repro.obs.registry import MetricsRegistry
from repro.obs.series import (
    MetricsSeriesWriter,
    iter_metrics_series,
    read_metrics_series,
)


class TestWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "series.jsonl"
        with MetricsSeriesWriter(path) as writer:
            for step in range(5):
                writer.append({"superstep": step, "live": 100 - step})
        records = read_metrics_series(path)
        assert [r["seq"] for r in records] == list(range(5))
        assert [r["snapshot"]["superstep"] for r in records] == list(range(5))
        walls = [r["wall_s"] for r in records]
        assert walls == sorted(walls)

    def test_meta_header_written_once_and_skipped_by_reader(self, tmp_path):
        path = tmp_path / "series.jsonl"
        with MetricsSeriesWriter(path, meta={"algorithm": "alg1"}) as writer:
            writer.append({"superstep": 0})
            writer.append({"superstep": 1})
        raw = [json.loads(line) for line in path.read_text().splitlines()]
        assert raw[0] == {"seq": None, "meta": {"algorithm": "alg1"}}
        assert len(raw) == 3
        # readers skip the header
        assert [r["seq"] for r in read_metrics_series(path)] == [0, 1]
        assert list(iter_metrics_series(path)) == read_metrics_series(path)

    def test_lazy_open_leaves_no_file(self, tmp_path):
        path = tmp_path / "never.jsonl"
        with MetricsSeriesWriter(path, meta={"x": 1}):
            pass
        assert not path.exists()

    def test_extra_fields_preserved(self, tmp_path):
        path = tmp_path / "series.jsonl"
        with MetricsSeriesWriter(path) as writer:
            record = writer.append({"superstep": 0}, leg=2, outcome="converged")
        assert record["leg"] == 2
        (loaded,) = read_metrics_series(path)
        assert loaded["leg"] == 2
        assert loaded["outcome"] == "converged"

    def test_append_is_append_only(self, tmp_path):
        path = tmp_path / "series.jsonl"
        with MetricsSeriesWriter(path) as writer:
            writer.append({"superstep": 0})
        with MetricsSeriesWriter(path) as writer:
            writer.append({"superstep": 1})
        # second writer restarts seq but must not truncate the file
        records = read_metrics_series(path)
        assert [r["snapshot"]["superstep"] for r in records] == [0, 1]

    def test_registry_snapshot_payload(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_msgs", "m").inc(9)
        path = tmp_path / "series.jsonl"
        with MetricsSeriesWriter(path) as writer:
            writer.append(reg.snapshot())
        (record,) = read_metrics_series(path)
        assert record["snapshot"]["repro_msgs"]["samples"][0]["value"] == 9
