"""Unit tests for the proper-edge-coloring verifier."""

import pytest

from repro.errors import VerificationError
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.verify import (
    assert_proper_edge_coloring,
    check_edge_coloring_complete,
    check_proper_edge_coloring,
)


class TestProperness:
    def test_valid_coloring_passes(self):
        g = path_graph(3)
        assert check_proper_edge_coloring(g, {(0, 1): 0, (1, 2): 1}) == []

    def test_adjacent_same_color_flagged(self):
        g = path_graph(3)
        violations = check_proper_edge_coloring(g, {(0, 1): 0, (1, 2): 0})
        assert len(violations) == 1
        assert "vertex 1" in violations[0]

    def test_star_conflicts_counted_per_pair(self):
        g = star_graph(3)
        coloring = {(0, 1): 5, (0, 2): 5, (0, 3): 5}
        violations = check_proper_edge_coloring(g, coloring)
        assert len(violations) == 2  # each new duplicate flagged once

    def test_unknown_edge_flagged(self):
        g = path_graph(2)
        violations = check_proper_edge_coloring(g, {(0, 5): 0})
        assert any("not in the graph" in v for v in violations)

    def test_noncanonical_key_flagged(self):
        g = path_graph(2)
        violations = check_proper_edge_coloring(g, {(1, 0): 0})
        assert any("canonical" in v for v in violations)

    @pytest.mark.parametrize("bad", [-1, 1.5, "red", True, None])
    def test_invalid_color_values(self, bad):
        g = path_graph(2)
        violations = check_proper_edge_coloring(g, {(0, 1): bad})
        assert any("invalid color" in v for v in violations)

    def test_partial_coloring_allowed(self):
        g = cycle_graph(5)
        assert check_proper_edge_coloring(g, {(0, 1): 0}) == []


class TestCompleteness:
    def test_missing_edges_listed(self):
        g = path_graph(3)
        missing = check_edge_coloring_complete(g, {(0, 1): 0})
        assert missing == ["edge (1, 2) is uncolored"]

    def test_complete_passes(self):
        g = path_graph(3)
        assert check_edge_coloring_complete(g, {(0, 1): 0, (1, 2): 1}) == []


class TestAssertWrapper:
    def test_raises_on_violation(self):
        g = path_graph(3)
        with pytest.raises(VerificationError):
            assert_proper_edge_coloring(g, {(0, 1): 0, (1, 2): 0})

    def test_raises_on_incomplete(self):
        g = path_graph(3)
        with pytest.raises(VerificationError):
            assert_proper_edge_coloring(g, {(0, 1): 0})

    def test_partial_ok_when_not_complete(self):
        g = path_graph(3)
        assert_proper_edge_coloring(g, {(0, 1): 0}, complete=False)

    def test_message_truncated(self):
        g = star_graph(30)
        coloring = {e: 0 for e in g.edges()}
        with pytest.raises(VerificationError) as exc:
            assert_proper_edge_coloring(g, coloring)
        assert "violations" in str(exc.value)
