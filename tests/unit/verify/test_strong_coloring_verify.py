"""Unit tests for the strong-arc-coloring verifier."""

import pytest

from repro.errors import VerificationError
from repro.graphs.generators import complete_graph, path_graph
from repro.verify import assert_strong_arc_coloring, check_strong_arc_coloring


def p4d():
    return path_graph(4).to_directed()


class TestConflictDetection:
    def test_valid_assignment_passes(self):
        d = path_graph(2).to_directed()
        assert check_strong_arc_coloring(d, {(0, 1): 0, (1, 0): 1}) == []

    def test_reverse_arc_same_channel_flagged(self):
        d = path_graph(2).to_directed()
        violations = check_strong_arc_coloring(d, {(0, 1): 0, (1, 0): 0})
        assert len(violations) == 1

    def test_shared_endpoint_flagged(self):
        d = p4d()
        colors = {a: i for i, a in enumerate(d.arc_list())}
        colors[(0, 1)] = colors[(1, 2)] = 42
        violations = check_strong_arc_coloring(d, colors, complete=False)
        assert any("(0, 1)" in v and "(1, 2)" in v for v in violations)

    def test_one_hop_interference_flagged(self):
        d = p4d()
        colors = {a: i for i, a in enumerate(d.arc_list())}
        colors[(0, 1)] = colors[(2, 3)] = 42  # 2 ∈ N(1): conflict
        assert check_strong_arc_coloring(d, colors, complete=False)

    def test_far_arcs_same_channel_ok(self):
        d = path_graph(6).to_directed()
        colors = {a: i for i, a in enumerate(d.arc_list())}
        colors[(0, 1)] = colors[(4, 5)] = 42  # distance > 2: fine
        assert check_strong_arc_coloring(d, colors, complete=False) == []

    def test_each_conflict_reported_once(self):
        d = path_graph(2).to_directed()
        violations = check_strong_arc_coloring(d, {(0, 1): 3, (1, 0): 3})
        assert len(violations) == 1  # not once per direction


class TestStructuralChecks:
    def test_unknown_arc_flagged(self):
        d = p4d()
        violations = check_strong_arc_coloring(d, {(0, 3): 0}, complete=False)
        assert any("not in the digraph" in v for v in violations)

    def test_invalid_channel_flagged(self):
        d = path_graph(2).to_directed()
        violations = check_strong_arc_coloring(d, {(0, 1): -2}, complete=False)
        assert any("invalid channel" in v for v in violations)

    def test_completeness(self):
        d = path_graph(2).to_directed()
        violations = check_strong_arc_coloring(d, {(0, 1): 0})
        assert any("uncolored" in v for v in violations)

    def test_partial_mode(self):
        d = p4d()
        assert check_strong_arc_coloring(d, {(0, 1): 0}, complete=False) == []


class TestAssertWrapper:
    def test_raises(self):
        d = path_graph(2).to_directed()
        with pytest.raises(VerificationError):
            assert_strong_arc_coloring(d, {(0, 1): 0, (1, 0): 0})

    def test_passes_on_valid(self):
        d = complete_graph(3).to_directed()
        colors = {a: i for i, a in enumerate(d.arc_list())}
        assert_strong_arc_coloring(d, colors)
