"""Unit tests for the differential runner's comparison machinery."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs.generators import cycle_graph, path_graph
from repro.verify.differential import (
    TIERS,
    Divergence,
    TierRun,
    _diff_runs,
    _first_telemetry_divergence,
    available_tiers,
    colors_digest,
    diff_tiers,
    run_tier,
)


def make_run(tier="general", **overrides):
    base = dict(
        tier=tier,
        colors={(0, 1): 0, (1, 2): 1},
        rounds=3,
        supersteps=12,
        metrics={
            "supersteps": 12,
            "messages_sent": 40,
            "messages_delivered": 80,
            "messages_dropped": 0,
            "words_delivered": 120,
            "messages_discarded_halted": 2,
            "messages_lost_to_crash": 0,
            "messages_duplicated": 0,
        },
        state_histograms=[{"C": 3}, {"W": 2, "L": 1}, {"E": 3}],
        done_per_superstep=[0, 0, 1],
    )
    base.update(overrides)
    return TierRun(**base)


class TestFieldDiffing:
    def test_identical_runs_have_no_divergence(self):
        assert _diff_runs(make_run(), make_run(tier="batched")) == []

    def test_color_value_mismatch_lists_the_edge(self):
        other = make_run(tier="batched", colors={(0, 1): 0, (1, 2): 5})
        divs = _diff_runs(make_run(), other)
        fields = [d.field for d in divs]
        assert "colors" in fields
        assert "colors[(1, 2)]" in fields
        entry = next(d for d in divs if d.field == "colors[(1, 2)]")
        assert (entry.baseline_value, entry.value) == (1, 5)

    def test_missing_edge_reported(self):
        other = make_run(tier="async", colors={(0, 1): 0})
        divs = _diff_runs(make_run(), other)
        entry = next(d for d in divs if d.field == "colors[(1, 2)]")
        assert entry.value is None

    def test_metric_mismatch_named(self):
        metrics = dict(make_run().metrics, messages_sent=41)
        divs = _diff_runs(make_run(), make_run(tier="parallel", metrics=metrics))
        assert [d.field for d in divs] == ["metrics.messages_sent"]

    def test_async_ignores_engine_superstep_counter(self):
        metrics = dict(make_run().metrics, supersteps=0)
        assert _diff_runs(make_run(), make_run(tier="async", metrics=metrics)) == []
        # ...but any synchronous tier must match it.
        divs = _diff_runs(make_run(), make_run(tier="fastpath", metrics=metrics))
        assert [d.field for d in divs] == ["metrics.supersteps"]

    def test_telemetry_pins_first_diverging_superstep(self):
        other = make_run(
            tier="fastpath",
            colors={(0, 1): 0, (1, 2): 5},
            state_histograms=[{"C": 3}, {"W": 3}, {"E": 3}],
        )
        divs = _diff_runs(make_run(), other)
        assert all(d.superstep == 1 for d in divs if d.field.startswith("colors"))
        assert "superstep: 1" in str(divs[0])

    def test_pure_telemetry_divergence_still_reported(self):
        # Same final answer, different path: still an equivalence failure.
        other = make_run(
            tier="batched",
            state_histograms=[{"C": 3}, {"L": 2, "W": 1}, {"E": 3}],
        )
        divs = _diff_runs(make_run(), other)
        assert [d.field for d in divs] == ["telemetry"]
        assert divs[0].superstep == 1

    def test_async_has_no_telemetry_to_pin(self):
        other = make_run(
            tier="async", state_histograms=None, done_per_superstep=None
        )
        assert _first_telemetry_divergence(make_run(), other) is None
        assert _diff_runs(make_run(), other) == []

    def test_length_mismatch_pins_the_shorter_end(self):
        other = make_run(
            tier="batched",
            state_histograms=[{"C": 3}, {"W": 2, "L": 1}],
            done_per_superstep=[0, 0],
            supersteps=8,
        )
        assert _first_telemetry_divergence(make_run(), other) == 2


class TestDigest:
    def test_order_independent(self):
        a = colors_digest({(0, 1): 0, (1, 2): 1})
        b = colors_digest({(1, 2): 1, (0, 1): 0})
        assert a == b

    def test_sensitive_to_values(self):
        assert colors_digest({(0, 1): 0}) != colors_digest({(0, 1): 1})


class TestTierSelection:
    def test_default_is_all_tiers(self):
        runnable, skipped = available_tiers(None)
        assert set(runnable) | set(skipped) == set(TIERS)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            available_tiers(["general", "warp"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tier("general", path_graph(3), algorithm="alg3")
        with pytest.raises(ConfigurationError):
            run_tier("warp", path_graph(3))

    def test_diff_tiers_rejects_unknown_algorithm_upfront(self):
        # A bad algorithm is a caller mistake, not a per-tier crash: it
        # must raise instead of landing in report.errors for every tier.
        with pytest.raises(ConfigurationError):
            diff_tiers(path_graph(3), algorithm="alg3")

    def test_subset_report_only_runs_requested(self):
        report = diff_tiers(cycle_graph(5), tiers=["general", "fastpath"], seed=2)
        assert set(report.runs) == {"general", "fastpath"}
        assert report.ok

    def test_report_counts_graph(self):
        report = diff_tiers(cycle_graph(5), tiers=["general"], seed=2)
        assert (report.num_nodes, report.num_edges) == (5, 5)
        assert report.first_divergence_superstep is None
