"""Unit tests for the surviving-subgraph (partial) verifiers."""

import pytest

from repro.errors import VerificationError
from repro.graphs.adjacency import DiGraph, Graph
from repro.verify import (
    assert_partial_edge_coloring,
    assert_partial_strong_coloring,
    check_partial_edge_coloring,
    check_partial_strong_coloring,
    surviving_subgraph,
)


def square() -> Graph:
    g = Graph.from_num_nodes(4)
    g.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 0)])
    return g


class TestSurvivingSubgraph:
    def test_removes_crashed_nodes_and_incident_edges(self):
        alive = surviving_subgraph(square(), {2})
        assert set(alive.nodes()) == {0, 1, 3}
        assert alive.has_edge(0, 1) and alive.has_edge(0, 3)
        assert not alive.has_edge(1, 2) and not alive.has_edge(2, 3)

    def test_empty_crash_set_is_identity(self):
        g = square()
        alive = surviving_subgraph(g, set())
        assert set(alive.nodes()) == set(g.nodes())
        assert alive.num_edges == g.num_edges


class TestPartialEdgeColoring:
    def test_valid_after_crash(self):
        # 2 crashed: edges (1,2) and (2,3) are uncolored debris.
        colors = {(0, 1): 0, (0, 3): 1}
        assert check_partial_edge_coloring(square(), colors, {2}) == []

    def test_crash_incident_records_discarded_not_flagged(self):
        # A half-colored abandoned edge must not count as a violation.
        colors = {(0, 1): 0, (0, 3): 1, (1, 2): 0, (2, 3): 5}
        assert check_partial_edge_coloring(square(), colors, {2}) == []

    def test_surviving_conflict_still_caught(self):
        colors = {(0, 1): 0, (0, 3): 0}  # share node 0, same color
        violations = check_partial_edge_coloring(square(), colors, {2})
        assert violations

    def test_missing_surviving_edge_flagged_when_complete(self):
        colors = {(0, 1): 0}  # (0,3) between survivors is uncolored
        assert check_partial_edge_coloring(square(), colors, {2})
        assert (
            check_partial_edge_coloring(square(), colors, {2}, complete=False)
            == []
        )

    def test_assert_wrapper(self):
        assert_partial_edge_coloring(square(), {(0, 1): 0, (0, 3): 1}, {2})
        with pytest.raises(VerificationError):
            assert_partial_edge_coloring(square(), {(0, 1): 0, (0, 3): 0}, {2})


class TestPartialStrongColoring:
    def digraph(self) -> DiGraph:
        d = DiGraph()
        for u in range(4):
            d.add_node(u)
        for tail, head in [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]:
            d.add_arc(tail, head)
        return d

    def test_valid_after_crash(self):
        colors = {(0, 1): 0, (1, 0): 1, (1, 2): 2, (2, 1): 3}
        assert check_partial_strong_coloring(self.digraph(), colors, {3}) == []

    def test_crash_incident_arcs_discarded(self):
        colors = {(0, 1): 0, (1, 0): 1, (1, 2): 2, (2, 1): 3, (2, 3): 0, (3, 2): 0}
        assert check_partial_strong_coloring(self.digraph(), colors, {3}) == []

    def test_surviving_conflict_still_caught(self):
        # Arcs (0,1) and (2,1) share head 1: same channel interferes.
        colors = {(0, 1): 0, (1, 0): 1, (1, 2): 2, (2, 1): 0}
        assert check_partial_strong_coloring(self.digraph(), colors, {3})

    def test_completeness_scoped_to_survivors(self):
        colors = {(0, 1): 0, (1, 0): 1, (1, 2): 2}  # (2,1) missing
        assert check_partial_strong_coloring(self.digraph(), colors, {3})
        assert (
            check_partial_strong_coloring(
                self.digraph(), colors, {3}, complete=False
            )
            == []
        )

    def test_assert_wrapper(self):
        colors = {(0, 1): 0, (1, 0): 1, (1, 2): 2, (2, 1): 3}
        assert_partial_strong_coloring(self.digraph(), colors, {3})
        with pytest.raises(VerificationError):
            assert_partial_strong_coloring(
                self.digraph(), {(0, 1): 0, (2, 1): 0}, {3}, complete=False
            )
