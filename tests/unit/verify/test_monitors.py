"""Unit tests for the runtime invariant monitors.

Each monitor must (a) stay silent on a correct run and (b) fire on a
seeded violation of its invariant.  Violations are seeded with small
malicious node programs driven through the real engine, so the engine's
hook plumbing (begin_run / after_superstep call sites, the ``stepped``
and ``outbound`` arguments) is exercised end to end.
"""

import pytest

from repro.core.edge_coloring import color_edges
from repro.core.dima2ed import strong_color_arcs
from repro.core.states import AutomatonState
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_avg_degree,
    path_graph,
)
from repro.runtime.engine import SynchronousEngine
from repro.runtime.faults import CrashNodes, DropRandomMessages, compose
from repro.runtime.metrics import RunMetrics
from repro.runtime.node import NodeProgram
from repro.verify import (
    ConservationMonitor,
    InvariantViolation,
    PaletteBoundMonitor,
    RoundInvariantMonitor,
    TransitionLegalityMonitor,
    default_monitors,
)


class ScriptedProgram(NodeProgram):
    """Steps through a scripted per-superstep (state, edge_colors) plan."""

    def __init__(self, node_id, states=None, colorings=None, rounds=2):
        self.node_id = node_id
        self.states = states or []
        self.colorings = colorings or {}
        self.rounds = rounds
        self.edge_colors = {}
        self._step = 0

    @property
    def state(self):
        if self._step == 0 or not self.states:
            return AutomatonState.CHOOSE
        return self.states[min(self._step - 1, len(self.states) - 1)]

    def on_superstep(self, ctx, inbox):
        for v, c in self.colorings.get(self._step, ()):
            self.edge_colors[v] = c
        self._step += 1
        if self._step >= self.rounds * 4:
            self.halted = True


def run_engine(graph, factory, monitors, max_supersteps=64):
    return SynchronousEngine(
        graph, factory, seed=0, monitors=monitors, max_supersteps=max_supersteps
    ).run()


class TestTransitionLegality:
    def test_real_runs_clean(self):
        g = erdos_renyi_avg_degree(20, 4.0, seed=1)
        color_edges(g, seed=2, monitors=[TransitionLegalityMonitor()])
        strong_color_arcs(
            g.to_directed(), seed=2, monitors=[TransitionLegalityMonitor()]
        )

    def test_illegal_jump_fires(self):
        # C -> U skips the invite/listen phase entirely.
        S = AutomatonState
        plan = [S.UPDATE, S.EXCHANGE, S.CHOOSE, S.CHOOSE]

        def factory(u):
            return ScriptedProgram(u, states=plan)

        with pytest.raises(InvariantViolation) as exc:
            run_engine(path_graph(2), factory, [TransitionLegalityMonitor()])
        assert exc.value.monitor == "transition-legality"
        assert exc.value.superstep == 0
        assert "C -> U" in exc.value.detail

    def test_stutter_illegal_without_transport(self):
        # L -> L: a listener must move to U the next superstep.
        S = AutomatonState
        plan = [S.LISTEN, S.LISTEN, S.EXCHANGE, S.CHOOSE]

        def factory(u):
            return ScriptedProgram(u, states=plan)

        with pytest.raises(InvariantViolation) as exc:
            run_engine(path_graph(2), factory, [TransitionLegalityMonitor()])
        assert "L -> L" in exc.value.detail

    def test_transport_stutter_tolerated(self):
        g = cycle_graph(8)
        color_edges(
            g, seed=4, transport=True, monitors=[TransitionLegalityMonitor()]
        )


class TestRoundInvariants:
    def test_real_runs_clean(self):
        g = erdos_renyi_avg_degree(20, 4.0, seed=3)
        color_edges(g, seed=5, monitors=[RoundInvariantMonitor()])
        strong_color_arcs(
            g.to_directed(), seed=5, monitors=[RoundInvariantMonitor()]
        )

    def test_two_edges_in_one_round_fires(self):
        # Node 1 of the path 0-1-2 pairs with both neighbors in round 0.
        def factory(u):
            colorings = {}
            if u == 0:
                colorings = {2: [(1, 0)]}
            elif u == 1:
                colorings = {2: [(0, 0), (2, 1)]}
            elif u == 2:
                colorings = {2: [(1, 1)]}
            return ScriptedProgram(u, colorings=colorings)

        with pytest.raises(InvariantViolation) as exc:
            run_engine(path_graph(3), factory, [RoundInvariantMonitor()])
        assert exc.value.monitor == "round-invariants"
        assert exc.value.superstep == 3
        assert "not a matching" in exc.value.detail

    def test_endpoint_disagreement_fires(self):
        def factory(u):
            # Both endpoints record edge (0, 1) but with different colors.
            return ScriptedProgram(u, colorings={2: [(1 - u, u)]})

        with pytest.raises(InvariantViolation) as exc:
            run_engine(path_graph(2), factory, [RoundInvariantMonitor()])
        assert "disagree" in exc.value.detail

    def test_improper_partial_coloring_fires(self):
        # Round 0 colors (0,1) with 0; round 1 colors (1,2) with 0 —
        # each round is a matching, but the accumulated coloring puts
        # one color on two adjacent edges.
        def factory(u):
            colorings = {
                0: {2: [(1, 0)]},
                1: {2: [(0, 0)], 6: [(2, 0)]},
                2: {6: [(1, 0)]},
            }[u]
            return ScriptedProgram(u, colorings=colorings)

        with pytest.raises(InvariantViolation) as exc:
            run_engine(path_graph(3), factory, [RoundInvariantMonitor()])
        assert exc.value.superstep == 7
        assert "not proper" in exc.value.detail


class TestPaletteBound:
    def test_real_runs_clean(self):
        g = complete_graph(7)
        color_edges(g, seed=1, monitors=[PaletteBoundMonitor()])
        strong_color_arcs(
            g.to_directed(), seed=1, monitors=[PaletteBoundMonitor()]
        )

    def test_breach_fires(self):
        # Path of 2: Delta = 1, bound = 2*1 - 1 = 1, so color 5 breaches.
        def factory(u):
            return ScriptedProgram(u, colorings={2: [(1 - u, 5)]})

        with pytest.raises(InvariantViolation) as exc:
            run_engine(path_graph(2), factory, [PaletteBoundMonitor()])
        assert exc.value.monitor == "palette-bound"
        assert "breaching the palette bound 1" in exc.value.detail

    def test_explicit_bound(self):
        def factory(u):
            return ScriptedProgram(u, colorings={2: [(1 - u, 3)]})

        # Bound 4 admits color 3...
        run_engine(path_graph(2), factory, [PaletteBoundMonitor(bound=4)])
        # ...bound 3 does not.
        with pytest.raises(InvariantViolation):
            run_engine(path_graph(2), factory, [PaletteBoundMonitor(bound=3)])

    def test_random_window_has_no_derived_bound(self):
        # The ablation strategy escalates along paths; the monitor must
        # stay dormant rather than false-positive.
        from repro.core.edge_coloring import EdgeColoringParams

        g = path_graph(12)
        color_edges(
            g,
            seed=3,
            params=EdgeColoringParams(color_strategy="random_window"),
            monitors=[PaletteBoundMonitor()],
        )


class TestConservation:
    def test_real_runs_clean(self):
        g = erdos_renyi_avg_degree(25, 5.0, seed=2)
        color_edges(g, seed=6, monitors=[ConservationMonitor()])

    def test_faulty_runs_still_balance(self):
        # Drops, duplicates and crashes all have conservation terms; the
        # identity must hold under every fault class.
        from repro.core.edge_coloring import EdgeColoringParams
        from repro.runtime.faults import DuplicateMessages

        g = erdos_renyi_avg_degree(20, 4.0, seed=4)
        color_edges(
            g,
            seed=6,
            params=EdgeColoringParams(recovery=True),
            faults=compose(
                DropRandomMessages(0.08, seed=1),
                DuplicateMessages(0.05, seed=2),
                CrashNodes({2: 6}),
            ),
            check_consistency=False,
            monitors=[ConservationMonitor()],
        )

    def test_unbalanced_counters_fire(self):
        from repro.runtime.message import BROADCAST, Message

        g = path_graph(3)
        monitor = ConservationMonitor()
        monitor.begin_run(g, [])
        metrics = RunMetrics()
        metrics.messages_sent = 1
        metrics.messages_delivered = 1  # node 1 broadcast to 2 neighbors
        outbound = [(1, [Message(sender=1, dest=BROADCAST, payload=None)])]
        with pytest.raises(InvariantViolation) as exc:
            monitor.after_superstep(0, [], [0, 1, 2], metrics, outbound)
        assert exc.value.monitor == "message-conservation"
        assert "2 copies addressed but 1 accounted" in exc.value.detail

    def test_sent_mismatch_fires(self):
        from repro.runtime.message import Message

        g = path_graph(2)
        monitor = ConservationMonitor()
        monitor.begin_run(g, [])
        metrics = RunMetrics()  # claims nothing sent
        outbound = [(0, [Message(sender=0, dest=1, payload=None)])]
        with pytest.raises(InvariantViolation) as exc:
            monitor.after_superstep(0, [], [0, 1], metrics, outbound)
        assert "but 1 messages left the outboxes" in exc.value.detail


class TestEngineIntegration:
    def test_monitors_force_general_loop(self):
        g = cycle_graph(6)
        engine = SynchronousEngine(
            g, lambda u: ScriptedProgram(u), monitors=default_monitors()
        )
        assert not engine._fastpath_engaged()
        engine = SynchronousEngine(g, lambda u: ScriptedProgram(u))
        assert engine._fastpath_engaged()

    def test_monitors_block_batched_core(self):
        from repro.core.batched import batched_eligible

        kwargs = dict(
            compute="auto",
            fastpath=True,
            strict=True,
            faults=None,
            transport=None,
            tracer=None,
            recovery=False,
        )
        assert batched_eligible(**kwargs)
        assert not batched_eligible(**kwargs, monitors=[ConservationMonitor()])

    def test_violation_carries_context(self):
        err = InvariantViolation("m", 7, "boom")
        assert err.monitor == "m"
        assert err.superstep == 7
        assert err.detail == "boom"
        assert "superstep 7" in str(err)
