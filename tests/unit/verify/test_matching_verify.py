"""Unit tests for the matching verifier."""

import pytest

from repro.errors import VerificationError
from repro.graphs.generators import cycle_graph, path_graph
from repro.verify import assert_matching, check_matching, check_maximal_matching


class TestMatchingProperty:
    def test_valid(self):
        g = path_graph(4)
        assert check_matching(g, [(0, 1), (2, 3)]) == []

    def test_shared_vertex_flagged(self):
        g = path_graph(3)
        violations = check_matching(g, [(0, 1), (1, 2)])
        assert any("matched twice" in v for v in violations)

    def test_nonexistent_edge_flagged(self):
        g = path_graph(3)
        violations = check_matching(g, [(0, 2)])
        assert any("not in the graph" in v for v in violations)

    def test_duplicate_edge_flagged(self):
        g = path_graph(2)
        violations = check_matching(g, [(0, 1), (0, 1)])
        assert any("twice" in v for v in violations)

    def test_empty_matching_valid(self):
        assert check_matching(path_graph(3), []) == []

    def test_reversed_duplicate_is_one_edge_listed_twice(self):
        # Regression: (u, v) and (v, u) are the same undirected edge.  Before
        # canonicalization the dedup missed the flip and the pair was
        # misreported as "vertex matched twice".
        g = path_graph(2)
        violations = check_matching(g, [(0, 1), (1, 0)])
        assert len(violations) == 1
        assert "listed twice" in violations[0]
        assert not any("matched twice" in v for v in violations)

    def test_reversed_orientation_still_valid_matching(self):
        g = path_graph(4)
        assert check_matching(g, [(1, 0), (3, 2)]) == []


class TestMaximality:
    def test_maximal_passes(self):
        g = path_graph(4)
        assert check_maximal_matching(g, [(1, 2)]) == []

    def test_extensible_flagged(self):
        g = path_graph(4)  # edges (0,1),(1,2),(2,3)
        violations = check_maximal_matching(g, [(0, 1)])
        assert any("(2, 3)" in v for v in violations)

    def test_empty_on_edgeless_graph(self):
        from repro.graphs.adjacency import Graph

        assert check_maximal_matching(Graph.from_num_nodes(3), []) == []


class TestAssertWrapper:
    def test_raises_non_maximal(self):
        g = cycle_graph(6)
        with pytest.raises(VerificationError):
            assert_matching(g, [(0, 1)], maximal=True)

    def test_non_maximal_ok_when_not_required(self):
        g = cycle_graph(6)
        assert_matching(g, [(0, 1)], maximal=False)

    def test_raises_on_overlap(self):
        g = path_graph(3)
        with pytest.raises(VerificationError):
            assert_matching(g, [(0, 1), (1, 2)], maximal=False)
