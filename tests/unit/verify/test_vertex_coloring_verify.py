"""Unit tests for the vertex-coloring verifier."""

import pytest

from repro.errors import VerificationError
from repro.graphs.generators import cycle_graph, path_graph
from repro.verify.vertex_coloring import (
    assert_proper_vertex_coloring,
    check_proper_vertex_coloring,
)


class TestChecks:
    def test_valid(self):
        g = path_graph(3)
        assert check_proper_vertex_coloring(g, {0: 0, 1: 1, 2: 0}) == []

    def test_adjacent_same_flagged(self):
        g = path_graph(2)
        violations = check_proper_vertex_coloring(g, {0: 3, 1: 3})
        assert any("share color 3" in v for v in violations)

    def test_unknown_node_flagged(self):
        g = path_graph(2)
        violations = check_proper_vertex_coloring(g, {0: 0, 1: 1, 9: 2})
        assert any("not in the graph" in v for v in violations)

    @pytest.mark.parametrize("bad", [-1, 0.5, "blue", True])
    def test_invalid_color(self, bad):
        g = path_graph(2)
        violations = check_proper_vertex_coloring(g, {0: bad, 1: 1})
        assert any("invalid color" in v for v in violations)

    def test_incomplete_flagged(self):
        g = path_graph(3)
        violations = check_proper_vertex_coloring(g, {0: 0})
        assert sum("uncolored" in v for v in violations) == 2

    def test_partial_mode(self):
        g = cycle_graph(5)
        assert check_proper_vertex_coloring(g, {0: 0}, complete=False) == []


class TestAssert:
    def test_raises(self):
        g = path_graph(2)
        with pytest.raises(VerificationError):
            assert_proper_vertex_coloring(g, {0: 1, 1: 1})

    def test_passes(self):
        g = cycle_graph(4)
        assert_proper_vertex_coloring(g, {0: 0, 1: 1, 2: 0, 3: 1})
