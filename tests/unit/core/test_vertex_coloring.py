"""Unit tests for the distributed (Δ+1) vertex coloring extension."""

import math

import pytest

from repro.core.vertex_coloring import VertexColoringProgram, color_vertices
from repro.errors import ConfigurationError, ConvergenceError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_avg_degree,
    path_graph,
    star_graph,
)
from repro.verify.vertex_coloring import assert_proper_vertex_coloring


class TestBasics:
    def test_single_node(self):
        result = color_vertices(Graph.from_num_nodes(1), seed=1)
        assert result.colors == {0: 0}

    def test_single_edge(self):
        g = path_graph(2)
        result = color_vertices(g, seed=1)
        assert_proper_vertex_coloring(g, result.colors)
        assert result.colors[0] != result.colors[1]

    def test_complete_graph_uses_full_palette(self):
        g = complete_graph(6)
        result = color_vertices(g, seed=2)
        assert_proper_vertex_coloring(g, result.colors)
        assert result.num_colors == 6  # χ(K6) = 6 = Δ+1

    def test_star(self):
        g = star_graph(8)
        result = color_vertices(g, seed=3)
        assert_proper_vertex_coloring(g, result.colors)

    def test_empty_graph(self):
        result = color_vertices(Graph(), seed=1)
        assert result.colors == {}

    def test_isolated_nodes_colored(self):
        g = Graph.from_num_nodes(4)
        result = color_vertices(g, seed=1)
        assert set(result.colors) == {0, 1, 2, 3}


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(8))
    def test_proper_within_palette(self, seed):
        g = erdos_renyi_avg_degree(60, 7.0, seed=seed)
        result = color_vertices(g, seed=seed)
        assert_proper_vertex_coloring(g, result.colors)
        assert all(0 <= c < result.palette_size for c in result.colors.values())

    def test_rounds_logarithmic_not_delta(self):
        # n=200, Δ≈24: matching-based pairing would need Θ(Δ) ≈ 50
        # rounds; trial-and-confirm should finish in O(log n) ≈ 8-ish.
        g = erdos_renyi_avg_degree(200, 20.0, seed=4)
        result = color_vertices(g, seed=4)
        assert result.rounds < 4 * math.log2(200)

    def test_extra_colors_allowed(self):
        g = cycle_graph(10)
        result = color_vertices(g, seed=5, extra_colors=3)
        assert result.palette_size == 2 + 1 + 3
        assert_proper_vertex_coloring(g, result.colors)

    def test_determinism(self):
        g = erdos_renyi_avg_degree(40, 5.0, seed=6)
        a = color_vertices(g, seed=9)
        b = color_vertices(g, seed=9)
        assert a.colors == b.colors and a.rounds == b.rounds

    def test_noncontiguous_labels(self):
        g = Graph([(10, 20), (20, 30)])
        result = color_vertices(g, seed=7)
        assert set(result.colors) == {10, 20, 30}


class TestParameters:
    def test_bad_p_try(self):
        with pytest.raises(ConfigurationError):
            VertexColoringProgram(0, 4, p_try=0.0)
        with pytest.raises(ConfigurationError):
            VertexColoringProgram(0, 4, p_try=1.5)

    def test_bad_palette(self):
        with pytest.raises(ConfigurationError):
            VertexColoringProgram(0, 0)

    def test_budget_exhaustion(self):
        g = complete_graph(12)
        with pytest.raises(ConvergenceError):
            color_vertices(g, seed=1, max_rounds=1)

    def test_aggressive_try_probability(self):
        g = erdos_renyi_avg_degree(40, 5.0, seed=8)
        result = color_vertices(g, seed=8, p_try=1.0)
        assert_proper_vertex_coloring(g, result.colors)
