"""Unit tests for the locally-heaviest weighted matching extension."""

import networkx as nx
import pytest

from repro.core.weighted_matching import find_weighted_matching
from repro.errors import ConfigurationError
from repro.graphs.adjacency import Graph
from repro.graphs.convert import to_networkx
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_avg_degree,
    path_graph,
    star_graph,
)
from repro.types import canonical_edge
from repro.verify import assert_matching


def uniform_weights(g, value=1.0):
    return {e: value for e in g.edges()}


def seeded_weights(g, seed=0):
    import random

    rng = random.Random(seed)
    return {e: rng.uniform(0.1, 10.0) for e in g.edges()}


class TestBasics:
    def test_single_edge(self):
        g = path_graph(2)
        result = find_weighted_matching(g, {(0, 1): 3.0})
        assert result.edges == {(0, 1)}
        assert result.total_weight == 3.0

    def test_star_picks_heaviest(self):
        g = star_graph(4)
        weights = {(0, 1): 1.0, (0, 2): 9.0, (0, 3): 2.0, (0, 4): 5.0}
        result = find_weighted_matching(g, weights)
        assert result.edges == {(0, 2)}

    def test_path_alternation(self):
        # P4 with a heavy middle edge: matching takes the middle only.
        g = path_graph(4)
        weights = {(0, 1): 1.0, (1, 2): 10.0, (2, 3): 1.0}
        result = find_weighted_matching(g, weights)
        assert result.edges == {(1, 2)}

    def test_path_two_light_edges_beat_middle(self):
        # Greedy takes the middle (5) even though ends (3+3=6) are better
        # — exactly the 1/2-approximation behavior.
        g = path_graph(4)
        weights = {(0, 1): 3.0, (1, 2): 5.0, (2, 3): 3.0}
        result = find_weighted_matching(g, weights)
        assert result.total_weight >= 5.0

    def test_empty_graph(self):
        result = find_weighted_matching(Graph(), {})
        assert result.size == 0

    def test_isolated_nodes(self):
        result = find_weighted_matching(Graph.from_num_nodes(3), {})
        assert result.size == 0

    def test_missing_weight_rejected(self):
        g = path_graph(3)
        with pytest.raises(ConfigurationError):
            find_weighted_matching(g, {(0, 1): 1.0})

    def test_negative_weights_allowed(self):
        g = path_graph(2)
        result = find_weighted_matching(g, {(0, 1): -2.0})
        assert result.edges == {(0, 1)}  # maximal even when negative


class TestMatchingProperty:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_and_maximal(self, seed):
        g = erdos_renyi_avg_degree(40, 5.0, seed=seed)
        result = find_weighted_matching(g, seeded_weights(g, seed))
        assert_matching(g, result.edges, maximal=True)

    def test_deterministic(self):
        g = erdos_renyi_avg_degree(30, 4.0, seed=7)
        w = seeded_weights(g, 7)
        a = find_weighted_matching(g, w)
        b = find_weighted_matching(g, w)
        assert a.edges == b.edges

    def test_partner_symmetry(self):
        g = cycle_graph(9)
        result = find_weighted_matching(g, seeded_weights(g, 3))
        for u, v in result.partner.items():
            assert result.partner[v] == u


class TestApproximation:
    @pytest.mark.parametrize("seed", range(8))
    def test_half_of_optimum_er(self, seed):
        g = erdos_renyi_avg_degree(24, 4.0, seed=seed)
        weights = seeded_weights(g, seed)
        result = find_weighted_matching(g, weights)
        nxg = to_networkx(g)
        for (u, v), w in weights.items():
            nxg[u][v]["weight"] = w
        optimum = nx.max_weight_matching(nxg)
        opt_weight = sum(
            weights[canonical_edge(u, v)] for u, v in optimum
        )
        assert result.total_weight >= 0.5 * opt_weight - 1e-9

    def test_exact_on_uniform_complete_even(self):
        # On K_{2k} with uniform weights any perfect matching is optimal.
        g = complete_graph(8)
        result = find_weighted_matching(g, uniform_weights(g))
        assert result.size == 4

    def test_ties_resolved_consistently(self):
        g = cycle_graph(6)
        result = find_weighted_matching(g, uniform_weights(g))
        assert_matching(g, result.edges, maximal=True)
        assert result.size >= 2


class TestTermination:
    def test_superstep_budget_linear(self):
        g = erdos_renyi_avg_degree(60, 6.0, seed=2)
        result = find_weighted_matching(g, seeded_weights(g, 2))
        assert result.supersteps <= 4 * g.num_nodes + 16

    def test_fast_on_disjoint_heavy_edges(self):
        # All proposals are mutual in superstep 0: 2 supersteps total.
        g = Graph([(0, 1), (2, 3), (4, 5)])
        result = find_weighted_matching(g, uniform_weights(g))
        assert result.size == 3
        assert result.supersteps <= 3
