"""Unit tests for automaton states and wire messages."""

import dataclasses

import pytest

from repro.core.messages import Invite, Reply, Report
from repro.core.states import PHASES_PER_ROUND, AutomatonState, Role


class TestStates:
    def test_all_paper_states_present(self):
        labels = {s.value for s in AutomatonState}
        assert labels == {"C", "I", "L", "R", "W", "U", "E", "D"}

    def test_phases_per_round(self):
        assert PHASES_PER_ROUND == 4

    def test_roles(self):
        assert {r.name for r in Role} == {"INVITER", "LISTENER"}


class TestMessages:
    def test_invite_defaults(self):
        inv = Invite(sender=1, target=2)
        assert inv.color is None

    def test_invite_frozen(self):
        inv = Invite(sender=1, target=2, color=3)
        with pytest.raises(dataclasses.FrozenInstanceError):
            inv.color = 4

    def test_reply_mirrors_invite(self):
        inv = Invite(sender=1, target=2, color=3)
        rep = Reply(sender=inv.target, target=inv.sender, color=inv.color)
        assert rep.sender == 2 and rep.target == 1 and rep.color == 3

    def test_report_defaults(self):
        r = Report(sender=5)
        assert r.colors == ()
        assert r.removed == ()
        assert not r.done

    def test_report_equality_value_semantics(self):
        assert Report(1, colors=(2,)) == Report(1, colors=(2,))
        assert Report(1, colors=(2,)) != Report(1, colors=(3,))
