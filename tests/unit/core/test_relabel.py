"""``relabel_for_engine``: the zero-copy shortcut and its guard rails."""

from repro.core._coerce import relabel_for_engine
from repro.graphs.adjacency import Graph


def test_in_order_contiguous_graph_returned_unchanged():
    g = Graph.from_num_nodes(4)
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    work, mapping = relabel_for_engine(g)
    assert work is g
    assert mapping == {0: 0, 1: 1, 2: 2, 3: 3}


def test_shortcut_preserves_csr_cache():
    g = Graph.from_num_nodes(3)
    g.add_edge(0, 1)
    cached = g.to_csr()
    work, _ = relabel_for_engine(g)
    assert work.to_csr()[0] is cached[0]


def test_contiguous_but_out_of_insertion_order_still_relabels():
    # Graph.relabeled() assigns ids by insertion order, so this graph's
    # node 1 becomes 0; the shortcut must not change that behavior.
    g = Graph()
    g.add_node(1)
    g.add_node(0)
    g.add_edge(0, 1)
    work, mapping = relabel_for_engine(g)
    assert work is not g
    assert mapping == {1: 0, 0: 1}
    expected, expected_mapping = g.relabeled()
    assert work == expected
    assert mapping == expected_mapping


def test_noncontiguous_ids_relabel():
    g = Graph()
    g.add_node(10)
    g.add_node(20)
    g.add_edge(10, 20)
    work, mapping = relabel_for_engine(g)
    assert sorted(work.nodes()) == [0, 1]
    assert mapping == {10: 0, 20: 1}
    assert work.has_edge(0, 1)
