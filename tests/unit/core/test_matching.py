"""Unit tests for distributed matching discovery."""

import pytest

from repro.core.matching import find_maximal_matching
from repro.errors import ConvergenceError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_avg_degree,
    path_graph,
    star_graph,
)
from repro.verify import assert_matching


class TestBasics:
    def test_single_edge_matches(self, single_edge):
        result = find_maximal_matching(single_edge, seed=1)
        assert result.edges == {(0, 1)}
        assert result.partner == {0: 1, 1: 0}
        assert result.size == 1

    def test_star_matches_exactly_one(self, star10):
        result = find_maximal_matching(star10, seed=2)
        assert result.size == 1
        assert 0 in result.partner  # hub is always matched

    def test_empty_graph(self, empty_graph):
        result = find_maximal_matching(empty_graph, seed=1)
        assert result.size == 0

    def test_isolated_nodes(self, isolated_nodes):
        result = find_maximal_matching(isolated_nodes, seed=1)
        assert result.size == 0
        assert result.supersteps == 0

    def test_triangle_one_edge(self, triangle):
        result = find_maximal_matching(triangle, seed=3)
        assert result.size == 1


class TestMaximality:
    @pytest.mark.parametrize("seed", range(10))
    def test_er_matchings_maximal(self, seed):
        g = erdos_renyi_avg_degree(40, 5.0, seed=seed)
        result = find_maximal_matching(g, seed=seed)
        assert_matching(g, result.edges, maximal=True)

    def test_path_even(self):
        g = path_graph(6)
        result = find_maximal_matching(g, seed=4)
        assert_matching(g, result.edges, maximal=True)
        assert 2 <= result.size <= 3

    def test_cycle(self):
        g = cycle_graph(7)
        result = find_maximal_matching(g, seed=5)
        assert_matching(g, result.edges, maximal=True)
        assert result.size == 3  # maximal matching of C7 is always 3

    def test_complete_graph_near_perfect(self):
        g = complete_graph(8)
        result = find_maximal_matching(g, seed=6)
        assert_matching(g, result.edges, maximal=True)
        assert result.size == 4  # maximal = perfect in K_{2k}


class TestPartnerConsistency:
    def test_symmetric_partner_map(self, er_medium):
        result = find_maximal_matching(er_medium, seed=7)
        for u, v in result.partner.items():
            assert result.partner[v] == u

    def test_edges_match_partner_map(self, er_medium):
        result = find_maximal_matching(er_medium, seed=8)
        assert len(result.partner) == 2 * result.size


class TestKnobs:
    def test_determinism(self, er_medium):
        a = find_maximal_matching(er_medium, seed=11)
        b = find_maximal_matching(er_medium, seed=11)
        assert a.edges == b.edges

    def test_budget_exhaustion(self, er_medium):
        with pytest.raises(ConvergenceError):
            find_maximal_matching(er_medium, seed=1, max_rounds=1)

    def test_biased_coin(self, er_medium):
        result = find_maximal_matching(er_medium, seed=2, p_invite=0.7)
        assert_matching(er_medium, result.edges, maximal=True)

    def test_noncontiguous_labels(self):
        g = Graph([(10, 20), (20, 30), (30, 40)])
        result = find_maximal_matching(g, seed=3)
        assert_matching(g, result.edges, maximal=True)
