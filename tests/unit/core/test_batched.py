"""Gating and observability of the batched compute core.

The bit-identity of the kernels themselves is pinned by
``tests/property/test_batched_equivalence.py``; this module covers the
dispatch policy — which configurations may use a batched kernel, that
ineligible ones fall back to the per-node loop *silently*, and that the
batched telemetry stream is byte-for-byte the per-node one.
"""

import json

import pytest

import repro.core.kernels_numba as kernels_numba
from repro.core.batched import (
    Alg1Kernel,
    DiMa2EdKernel,
    batched_eligible,
    select_backend,
)
from repro.core.vectorized import Alg1VecKernel, DiMa2EdVecKernel
from repro.core.dima2ed import StrongColoringParams, strong_color_arcs
from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.errors import ConfigurationError
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.runtime.faults import DropRandomMessages
from repro.runtime.observe import AutomatonTelemetry
from repro.runtime.trace import EventTracer

ELIGIBLE = dict(
    compute="auto",
    fastpath=True,
    strict=True,
    faults=None,
    transport=None,
    tracer=None,
    recovery=False,
    defensive=False,
)


class TestBatchedEligible:
    def test_default_configuration_is_eligible(self):
        assert batched_eligible(**ELIGIBLE)

    def test_compute_pernode_disables(self):
        assert not batched_eligible(**{**ELIGIBLE, "compute": "pernode"})

    def test_compute_batched_same_gates(self):
        assert batched_eligible(**{**ELIGIBLE, "compute": "batched"})
        assert not batched_eligible(
            **{**ELIGIBLE, "compute": "batched", "strict": False}
        )

    @pytest.mark.parametrize(
        "override",
        [
            {"fastpath": False},
            {"strict": False},
            {"faults": object()},
            {"transport": object()},
            {"tracer": object()},
            {"recovery": True},
            {"defensive": True},
        ],
    )
    def test_each_gate_dimension_disables(self, override):
        assert not batched_eligible(**{**ELIGIBLE, **override})

    def test_unknown_compute_mode_raises(self):
        with pytest.raises(ConfigurationError):
            batched_eligible(**{**ELIGIBLE, "compute": "nope"})


@pytest.fixture
def forbid_kernels(monkeypatch):
    """Make any batched-kernel activation explode loudly."""

    def boom(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("batched kernel selected for a gated configuration")

    monkeypatch.setattr(Alg1Kernel, "bind", boom)
    monkeypatch.setattr(DiMa2EdKernel, "bind", boom)
    monkeypatch.setattr(Alg1VecKernel, "bind_graph", boom)
    monkeypatch.setattr(DiMa2EdVecKernel, "bind_graph", boom)


class TestSilentFallback:
    """Gated configurations must use the per-node loop without noise."""

    def test_positive_control_default_args_use_kernel(self, forbid_kernels):
        g = erdos_renyi_avg_degree(20, 3.0, seed=0)
        with pytest.raises(AssertionError, match="batched kernel selected"):
            color_edges(g, seed=0)
        with pytest.raises(AssertionError, match="batched kernel selected"):
            strong_color_arcs(g.to_directed(), seed=0)

    def test_fault_plan_falls_back(self, forbid_kernels):
        g = erdos_renyi_avg_degree(20, 3.0, seed=0)
        res = color_edges(g, seed=0, faults=DropRandomMessages(0.0, seed=1))
        assert res.colors

    def test_full_tracer_falls_back(self, forbid_kernels):
        g = erdos_renyi_avg_degree(20, 3.0, seed=0)
        res = color_edges(g, seed=0, tracer=EventTracer(64))
        assert res.colors

    def test_sampled_tracer_also_falls_back(self, forbid_kernels):
        # A sampling tracer keeps the *delivery* fast path, but the
        # batched core emits no events at all, so any tracer gates it.
        g = erdos_renyi_avg_degree(20, 3.0, seed=0)
        tracer = EventTracer(64, sample={"*": 10})
        res = color_edges(g, seed=0, tracer=tracer)
        assert res.colors

    def test_non_strict_falls_back(self, forbid_kernels):
        g = erdos_renyi_avg_degree(20, 3.0, seed=0)
        res = color_edges(g, seed=0, params=EdgeColoringParams(strict=False))
        assert res.colors

    def test_defensive_falls_back(self, forbid_kernels):
        g = erdos_renyi_avg_degree(20, 3.0, seed=0)
        res = color_edges(g, seed=0, params=EdgeColoringParams(defensive=True))
        assert res.colors

    def test_recovery_falls_back(self, forbid_kernels):
        g = erdos_renyi_avg_degree(20, 3.0, seed=0)
        res = color_edges(g, seed=0, params=EdgeColoringParams(recovery=True))
        assert res.colors

    def test_fastpath_false_falls_back(self, forbid_kernels):
        g = erdos_renyi_avg_degree(20, 3.0, seed=0)
        res = color_edges(g, seed=0, fastpath=False)
        assert res.colors

    def test_compute_pernode_falls_back(self, forbid_kernels):
        g = erdos_renyi_avg_degree(20, 3.0, seed=0)
        res = color_edges(g, seed=0, compute="pernode")
        assert res.colors

    def test_dima2ed_gates_mirror_alg1(self, forbid_kernels):
        d = erdos_renyi_avg_degree(20, 3.0, seed=0).to_directed()
        assert strong_color_arcs(d, seed=0, compute="pernode").colors
        assert strong_color_arcs(d, seed=0, tracer=EventTracer(64)).colors
        assert strong_color_arcs(
            d, seed=0, params=StrongColoringParams(recovery=True)
        ).colors

    def test_unknown_compute_mode_raises_from_wrapper(self):
        g = erdos_renyi_avg_degree(20, 3.0, seed=0)
        with pytest.raises(ConfigurationError):
            color_edges(g, seed=0, compute="vectorised")
        with pytest.raises(ConfigurationError):
            strong_color_arcs(g.to_directed(), seed=0, compute="vectorised")


class TestBatchedTelemetry:
    """Telemetry collected by the batched core is the per-node stream."""

    @pytest.mark.parametrize("seed", [0, 3])
    def test_alg1_telemetry_byte_identical(self, seed):
        g = erdos_renyi_avg_degree(60, 5.0, seed=seed)
        per_node, batched = AutomatonTelemetry(), AutomatonTelemetry()
        a = color_edges(g, seed=seed, compute="pernode", telemetry=per_node)
        b = color_edges(g, seed=seed, compute="batched", telemetry=batched)
        assert json.dumps(per_node.to_dict()) == json.dumps(batched.to_dict())
        assert a.metrics.to_dict() == b.metrics.to_dict()

    @pytest.mark.parametrize("seed", [0, 3])
    def test_dima2ed_telemetry_byte_identical(self, seed):
        d = erdos_renyi_avg_degree(40, 4.0, seed=seed).to_directed()
        per_node, batched = AutomatonTelemetry(), AutomatonTelemetry()
        a = strong_color_arcs(d, seed=seed, compute="pernode", telemetry=per_node)
        b = strong_color_arcs(d, seed=seed, compute="batched", telemetry=batched)
        assert json.dumps(per_node.to_dict()) == json.dumps(batched.to_dict())
        assert a.metrics.to_dict() == b.metrics.to_dict()


class TestSelectBackend:
    """Backend dispatch: explicit pins are honored, and the JIT tier
    degrades silently to the vectorized kernels when numba is absent —
    the fallback is part of the contract (all backends are
    bit-identical; the choice is purely speed)."""

    def test_explicit_pins(self):
        assert select_backend("batched") == "batched"
        assert select_backend("vectorized") == "vectorized"

    @pytest.mark.parametrize("compute", ["auto", "numba"])
    def test_numba_absent_falls_back_to_vectorized(self, compute, monkeypatch):
        monkeypatch.setattr(kernels_numba, "numba_available", lambda: False)
        assert select_backend(compute) == "vectorized"

    @pytest.mark.parametrize("compute", ["auto", "numba"])
    def test_numba_present_selects_numba(self, compute, monkeypatch):
        monkeypatch.setattr(kernels_numba, "numba_available", lambda: True)
        assert select_backend(compute) == "numba"

    def test_auto_routes_to_a_vec_kernel(self, monkeypatch):
        """compute="auto" on an eligible run must instantiate the plane
        kernels, not the bigint ones."""
        bound = []
        orig = Alg1VecKernel.bind_graph

        def spy(self, *args, **kwargs):
            bound.append(type(self).__name__)
            return orig(self, *args, **kwargs)

        monkeypatch.setattr(Alg1VecKernel, "bind_graph", spy)
        monkeypatch.setattr(kernels_numba, "numba_available", lambda: False)
        g = erdos_renyi_avg_degree(30, 4.0, seed=0)
        color_edges(g, seed=0, compute="auto")
        assert bound and all("Vec" in name for name in bound)
