"""Unit tests for Algorithm 2 (DiMa2Ed strong directed edge coloring)."""

import pytest

from repro.core.dima2ed import (
    DiMa2EdProgram,
    StrongColoringParams,
    strong_color_arcs,
)
from repro.errors import ConfigurationError, ConvergenceError, GraphError
from repro.graphs.adjacency import DiGraph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_avg_degree,
    path_graph,
    star_graph,
)
from repro.verify import assert_strong_arc_coloring


class TestSmallGraphs:
    def test_single_edge_two_channels(self):
        d = path_graph(2).to_directed()
        result = strong_color_arcs(d, seed=1)
        assert set(result.colors) == {(0, 1), (1, 0)}
        assert result.colors[(0, 1)] != result.colors[(1, 0)]

    def test_p3_all_arcs_distinct(self):
        # In P3 every pair of the 4 arcs conflicts.
        d = path_graph(3).to_directed()
        result = strong_color_arcs(d, seed=2)
        assert_strong_arc_coloring(d, result.colors)
        assert result.num_colors == 4

    def test_triangle(self):
        d = complete_graph(3).to_directed()
        result = strong_color_arcs(d, seed=3)
        assert_strong_arc_coloring(d, result.colors)
        assert result.num_colors == 6  # all 6 arcs mutually conflict

    def test_star_hub(self):
        d = star_graph(4).to_directed()
        result = strong_color_arcs(d, seed=4)
        assert_strong_arc_coloring(d, result.colors)

    def test_empty_digraph(self):
        result = strong_color_arcs(DiGraph(), seed=1)
        assert result.colors == {}
        assert result.rounds == 0

    def test_isolated_nodes(self):
        result = strong_color_arcs(DiGraph.from_num_nodes(4), seed=1)
        assert result.colors == {}


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_and_complete_on_er(self, seed):
        d = erdos_renyi_avg_degree(30, 4.0, seed=seed).to_directed()
        result = strong_color_arcs(d, seed=seed)
        assert_strong_arc_coloring(d, result.colors)
        assert len(result.colors) == d.num_arcs

    def test_cycle(self):
        d = cycle_graph(8).to_directed()
        result = strong_color_arcs(d, seed=7)
        assert_strong_arc_coloring(d, result.colors)

    @pytest.mark.parametrize("strategy", ["first_fit", "random_window"])
    def test_both_channel_strategies_valid(self, strategy):
        d = erdos_renyi_avg_degree(25, 4.0, seed=9).to_directed()
        result = strong_color_arcs(
            d, seed=9, params=StrongColoringParams(channel_strategy=strategy)
        )
        assert_strong_arc_coloring(d, result.colors)

    def test_asymmetric_rejected(self):
        d = DiGraph([(0, 1), (1, 2), (2, 1)])
        with pytest.raises(GraphError):
            strong_color_arcs(d, seed=1)

    def test_determinism(self, sym_digraph):
        a = strong_color_arcs(sym_digraph, seed=5)
        b = strong_color_arcs(sym_digraph, seed=5)
        assert a.colors == b.colors
        assert a.rounds == b.rounds


class TestParameters:
    def test_budget_exhaustion(self):
        d = erdos_renyi_avg_degree(30, 4.0, seed=2).to_directed()
        with pytest.raises(ConvergenceError):
            strong_color_arcs(d, seed=2, params=StrongColoringParams(max_rounds=1))

    def test_bad_channel_strategy(self):
        with pytest.raises(ConfigurationError):
            DiMa2EdProgram(0, [1], [1], channel_strategy="nope")

    def test_biased_coin(self):
        d = cycle_graph(6).to_directed()
        result = strong_color_arcs(
            d, seed=3, params=StrongColoringParams(p_invite=0.3)
        )
        assert_strong_arc_coloring(d, result.colors)


class TestResultMetadata:
    def test_rounds_per_delta(self):
        d = cycle_graph(10).to_directed()
        result = strong_color_arcs(d, seed=1)
        assert result.delta == 2
        assert result.rounds_per_delta == result.rounds / 2

    def test_metrics_populated(self, sym_digraph):
        result = strong_color_arcs(sym_digraph, seed=1)
        assert result.metrics.messages_sent > 0

    def test_num_colors(self):
        d = path_graph(2).to_directed()
        result = strong_color_arcs(d, seed=1)
        assert result.num_colors == 2
