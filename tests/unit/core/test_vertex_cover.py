"""Unit tests for the matching-based vertex cover."""

import pytest

from repro.core.vertex_cover import find_vertex_cover
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    erdos_renyi_avg_degree,
    path_graph,
    star_graph,
)


def is_cover(graph, cover):
    return all(u in cover or v in cover for u, v in graph.edges())


class TestCoverProperty:
    @pytest.mark.parametrize("seed", range(6))
    def test_er_covers(self, seed):
        g = erdos_renyi_avg_degree(40, 5.0, seed=seed)
        result = find_vertex_cover(g, seed=seed)
        assert is_cover(g, result.cover)

    def test_star_cover(self, star10):
        result = find_vertex_cover(star10, seed=1)
        assert is_cover(star10, result.cover)
        assert result.size == 2  # hub + one leaf

    def test_single_edge(self, single_edge):
        result = find_vertex_cover(single_edge, seed=1)
        assert result.cover == {0, 1}

    def test_empty(self, empty_graph):
        result = find_vertex_cover(empty_graph, seed=1)
        assert result.cover == set()


class TestApproximation:
    def test_size_is_twice_matching(self, er_medium):
        result = find_vertex_cover(er_medium, seed=2)
        assert result.size == 2 * result.matching.size
        assert result.approximation_bound == result.matching.size

    def test_two_approx_on_bipartite(self):
        # In K_{a,a} optimal cover is a; ours is ≤ 2a.
        g = complete_bipartite_graph(5, 5)
        result = find_vertex_cover(g, seed=3)
        assert is_cover(g, result.cover)
        assert result.size <= 2 * 5

    def test_path_cover_bound(self):
        # P5 (4 edges): optimum 2, ours ≤ 4.
        g = path_graph(5)
        result = find_vertex_cover(g, seed=4)
        assert is_cover(g, result.cover)
        assert result.size <= 4

    def test_complete_graph(self):
        g = complete_graph(6)
        result = find_vertex_cover(g, seed=5)
        assert is_cover(g, result.cover)
        # optimum is n-1 = 5; 2-approx allows 6 (= whole matching cover)
        assert result.size == 6
