"""Unit tests for Algorithm 1 (distributed edge coloring)."""

import pytest

from repro.core.edge_coloring import (
    EdgeColoringParams,
    color_edges,
    default_round_budget,
)
from repro.errors import ConvergenceError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_avg_degree,
    path_graph,
    star_graph,
)
from repro.verify import assert_proper_edge_coloring


class TestSmallGraphs:
    def test_single_edge(self, single_edge):
        result = color_edges(single_edge, seed=1)
        assert result.colors == {(0, 1): 0}
        assert result.num_colors == 1

    def test_triangle(self, triangle):
        result = color_edges(triangle, seed=2)
        assert_proper_edge_coloring(triangle, result.colors)
        assert result.num_colors == 3  # χ'(K3) = 3

    def test_path(self, p4):
        result = color_edges(p4, seed=3)
        assert_proper_edge_coloring(p4, result.colors)
        assert result.num_colors <= 3

    def test_even_cycle_two_or_three_colors(self, c6):
        result = color_edges(c6, seed=4)
        assert_proper_edge_coloring(c6, result.colors)
        assert 2 <= result.num_colors <= 3

    def test_star_all_distinct(self, star10):
        result = color_edges(star10, seed=5)
        assert_proper_edge_coloring(star10, result.colors)
        # star edges are mutually adjacent: exactly Δ colors, one each
        assert result.num_colors == 10
        assert sorted(result.colors.values()) == list(range(10))

    def test_empty_graph(self, empty_graph):
        result = color_edges(empty_graph, seed=1)
        assert result.colors == {}
        assert result.rounds == 0
        assert result.delta == 0

    def test_isolated_nodes(self, isolated_nodes):
        result = color_edges(isolated_nodes, seed=1)
        assert result.colors == {}
        assert result.supersteps == 0


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(8))
    def test_proper_and_complete_on_er(self, seed):
        g = erdos_renyi_avg_degree(50, 6.0, seed=seed)
        result = color_edges(g, seed=seed)
        assert_proper_edge_coloring(g, result.colors)
        assert len(result.colors) == g.num_edges

    @pytest.mark.parametrize("seed", range(8))
    def test_proposition_3_bound(self, seed):
        g = erdos_renyi_avg_degree(40, 8.0, seed=seed + 100)
        result = color_edges(g, seed=seed)
        assert result.num_colors <= 2 * result.delta - 1

    def test_complete_graph(self, k5):
        result = color_edges(k5, seed=6)
        assert_proper_edge_coloring(k5, result.colors)
        assert 5 <= result.num_colors <= 7  # χ'(K5)=5, bound 2Δ−1=7

    def test_bipartite(self):
        g = complete_bipartite_graph(4, 4)
        result = color_edges(g, seed=7)
        assert_proper_edge_coloring(g, result.colors)
        assert result.num_colors <= 2 * 4 - 1

    def test_palette_is_contiguous_prefix_usage(self):
        # Lowest-index color rule: color c used implies some edge of each
        # color 0..c-1 exists (the global palette has no holes).
        g = erdos_renyi_avg_degree(40, 6.0, seed=9)
        result = color_edges(g, seed=9)
        assert result.palette == list(range(result.num_colors))

    def test_disconnected_components_colored_independently(self):
        g = Graph([(0, 1), (1, 2), (3, 4), (4, 5)])
        result = color_edges(g, seed=11)
        assert_proper_edge_coloring(g, result.colors)


class TestResultMetadata:
    def test_rounds_and_supersteps(self, er_medium):
        result = color_edges(er_medium, seed=1)
        assert result.supersteps == pytest.approx(result.rounds * 4, abs=3)
        assert result.rounds >= 1

    def test_rounds_per_delta(self, er_medium):
        result = color_edges(er_medium, seed=1)
        assert result.rounds_per_delta == result.rounds / result.delta

    def test_colors_over_delta(self, star10):
        result = color_edges(star10, seed=1)
        assert result.colors_over_delta == 0

    def test_metrics_populated(self, er_medium):
        result = color_edges(er_medium, seed=1)
        assert result.metrics.messages_sent > 0
        assert result.metrics.messages_delivered > 0

    def test_noncontiguous_labels_mapped_back(self):
        g = Graph([(100, 200), (200, 300)])
        result = color_edges(g, seed=2)
        assert set(result.colors) == {(100, 200), (200, 300)}
        assert_proper_edge_coloring(g, result.colors)


class TestParameters:
    def test_budget_exhaustion_raises(self, er_medium):
        with pytest.raises(ConvergenceError) as exc:
            color_edges(
                er_medium, seed=1, params=EdgeColoringParams(max_rounds=1)
            )
        assert exc.value.rounds == 1

    def test_default_budget_scales_with_delta(self):
        assert default_round_budget(10) > default_round_budget(1)
        assert default_round_budget(0) >= 1

    def test_biased_coin_still_correct(self, er_medium):
        for bias in (0.2, 0.8):
            result = color_edges(
                er_medium, seed=4, params=EdgeColoringParams(p_invite=bias)
            )
            assert_proper_edge_coloring(er_medium, result.colors)

    def test_defensive_mode_still_correct(self, er_medium):
        result = color_edges(
            er_medium, seed=5, params=EdgeColoringParams(defensive=True)
        )
        assert_proper_edge_coloring(er_medium, result.colors)

    def test_determinism(self, er_medium):
        a = color_edges(er_medium, seed=42)
        b = color_edges(er_medium, seed=42)
        assert a.colors == b.colors
        assert a.rounds == b.rounds

    def test_seeds_differ(self, er_medium):
        a = color_edges(er_medium, seed=1)
        b = color_edges(er_medium, seed=2)
        assert a.colors != b.colors


class TestRoundScaling:
    def test_rounds_track_delta_not_n(self):
        # Same Δ, very different n: rounds should be comparable.
        small = color_edges(cycle_graph(10), seed=1)
        large = color_edges(cycle_graph(200), seed=1)
        assert large.rounds <= small.rounds * 4 + 8

    def test_star_rounds_linear_in_delta(self):
        # The hub colors one edge per successful round: Θ(Δ) exactly.
        r = color_edges(star_graph(16), seed=3)
        assert 16 <= r.rounds <= 16 * 12

    def test_path2_single_round_possible(self):
        # With the right seed both endpoints pair in round 1.
        rounds = {color_edges(path_graph(2), seed=s).rounds for s in range(20)}
        assert min(rounds) == 1
