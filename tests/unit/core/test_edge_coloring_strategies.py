"""Unit tests for Algorithm 1's ablation strategies (non-paper rules)."""

import pytest

from repro.core.edge_coloring import (
    EdgeColoringParams,
    EdgeColoringProgram,
    color_edges,
)
from repro.errors import ConfigurationError
from repro.graphs.generators import erdos_renyi_avg_degree, star_graph
from repro.verify import assert_proper_edge_coloring


class TestValidation:
    def test_bad_color_strategy(self):
        with pytest.raises(ConfigurationError):
            EdgeColoringProgram(0, color_strategy="hue-rotate")

    def test_bad_responder_strategy(self):
        with pytest.raises(ConfigurationError):
            EdgeColoringProgram(0, responder_strategy="pickiest")


@pytest.mark.parametrize("color_rule", ["lowest", "random_window"])
@pytest.mark.parametrize("responder_rule", ["random", "lowest_color"])
class TestAllCombinationsCorrect:
    def test_proper_and_complete(self, color_rule, responder_rule):
        g = erdos_renyi_avg_degree(40, 6.0, seed=7)
        params = EdgeColoringParams(
            color_strategy=color_rule, responder_strategy=responder_rule
        )
        result = color_edges(g, seed=7, params=params)
        assert_proper_edge_coloring(g, result.colors)

    def test_bound_holds(self, color_rule, responder_rule):
        g = erdos_renyi_avg_degree(30, 5.0, seed=8)
        params = EdgeColoringParams(
            color_strategy=color_rule, responder_strategy=responder_rule
        )
        result = color_edges(g, seed=8, params=params)
        # random_window can exceed 2Δ−1?  No: the window only opens past
        # colors that are taken at one endpoint, so the bound argument
        # still applies.
        assert result.num_colors <= 2 * result.delta - 1


class TestStrategyEffects:
    def test_random_window_breaks_prefix_property(self):
        # With random proposals the palette need not be a 0..k-1 prefix.
        g = erdos_renyi_avg_degree(60, 8.0, seed=9)
        params = EdgeColoringParams(color_strategy="random_window")
        result = color_edges(g, seed=9, params=params)
        # valid but possibly gappy; the result object reports what's used
        assert result.num_colors == len(result.palette)

    def test_lowest_is_paper_default(self):
        assert EdgeColoringParams().color_strategy == "lowest"
        assert EdgeColoringParams().responder_strategy == "random"

    def test_lowest_color_acceptance_on_star(self):
        # Leaves inviting a listening hub: with lowest_color acceptance
        # the hub always takes the smallest proposal on offer.
        g = star_graph(6)
        params = EdgeColoringParams(responder_strategy="lowest_color")
        result = color_edges(g, seed=10, params=params)
        assert_proper_edge_coloring(g, result.colors)
        assert result.num_colors == 6

    def test_quality_gap_lowest_vs_random_window(self):
        # Across seeds, lowest-color proposals should use no more colors
        # on average than random-window ones.
        g = erdos_renyi_avg_degree(60, 8.0, seed=11)
        low = []
        rnd = []
        for seed in range(6):
            low.append(color_edges(g, seed=seed).num_colors)
            rnd.append(
                color_edges(
                    g,
                    seed=seed,
                    params=EdgeColoringParams(color_strategy="random_window"),
                ).num_colors
            )
        assert sum(low) <= sum(rnd)
