"""Unit tests for color-ledger bookkeeping."""

from repro.core.palette import ColorLedger, first_free


class TestFirstFree:
    def test_empty(self):
        assert first_free() == 0
        assert first_free(set()) == 0

    def test_gap(self):
        assert first_free({0, 1, 3}) == 2

    def test_union_of_sets(self):
        assert first_free({0, 2}, {1}) == 3

    def test_disjoint_gap(self):
        assert first_free({0}, {2}) == 1

    def test_iterables_accepted(self):
        assert first_free([0, 1], (2,)) == 3


class TestColorLedger:
    def test_initial_state(self):
        ledger = ColorLedger([1, 2])
        assert ledger.used == set()
        assert ledger.propose_for(1) == 0

    def test_consume_and_propose(self):
        ledger = ColorLedger([1])
        ledger.consume(0)
        assert ledger.propose_for(1) == 1
        assert ledger.is_mine(0)
        assert not ledger.is_mine(1)

    def test_neighbor_knowledge_shapes_proposal(self):
        ledger = ColorLedger([1, 2])
        ledger.learn(1, [0, 1])
        assert ledger.propose_for(1) == 2
        assert ledger.propose_for(2) == 0  # knowledge is per-neighbor

    def test_fresh_tracking(self):
        ledger = ColorLedger([1])
        ledger.consume(3)
        ledger.consume(1)
        assert ledger.take_fresh() == [1, 3]  # sorted
        assert ledger.take_fresh() == []  # cleared

    def test_reconsume_not_fresh_twice(self):
        ledger = ColorLedger([1])
        ledger.consume(0)
        ledger.take_fresh()
        ledger.consume(0)
        assert ledger.take_fresh() == [0]  # set semantics, reported again

    def test_snapshot_immutable_copy(self):
        ledger = ColorLedger([1])
        ledger.consume(2)
        snap = ledger.snapshot()
        ledger.consume(5)
        assert snap == frozenset({2})
