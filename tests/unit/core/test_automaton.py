"""Unit tests for the automaton skeleton (phases, roles, reply routing)."""

from typing import List, Optional

import pytest

from repro.core.automaton import MatchingAutomatonProgram
from repro.core.messages import Invite, Reply, Report
from repro.core.states import PHASES_PER_ROUND, AutomatonState
from repro.errors import ConfigurationError
from repro.graphs.generators import path_graph, star_graph
from repro.runtime.engine import SynchronousEngine


class Probe(MatchingAutomatonProgram):
    """Minimal concrete automaton: invites a fixed target, logs hooks."""

    def __init__(self, node_id: int, *, p_invite: float = 0.5, rounds: int = 1):
        super().__init__(node_id, p_invite=p_invite)
        self.max_rounds = rounds
        self.accepted: List[Invite] = []
        self.replied: List[Reply] = []
        self.reports_seen: List[Report] = []

    def make_invite(self, ctx) -> Optional[Invite]:
        target = ctx.neighbors[0]
        return Invite(sender=self.node_id, target=target, color=7)

    def on_accept(self, ctx, invite):
        self.accepted.append(invite)

    def on_reply(self, ctx, reply):
        self.replied.append(reply)

    def make_report(self, ctx):
        return Report(sender=self.node_id, colors=(self.node_id,))

    def on_reports(self, ctx, reports):
        self.reports_seen.extend(reports)

    def is_done(self, ctx) -> bool:
        return self.rounds_completed >= self.max_rounds


def run_probe(graph, factory, max_rounds=10):
    engine = SynchronousEngine(
        graph, factory, seed=3, max_supersteps=max_rounds * PHASES_PER_ROUND
    )
    return engine.run()


class TestConstruction:
    def test_bad_bias(self):
        with pytest.raises(ConfigurationError):
            Probe(0, p_invite=1.2)
        with pytest.raises(ConfigurationError):
            Probe(0, p_invite=-0.1)

    def test_initial_state(self):
        p = Probe(0)
        assert p.state is AutomatonState.CHOOSE
        assert p.rounds_completed == 0


class TestRoundStructure:
    def test_one_round_is_four_supersteps(self):
        run = run_probe(path_graph(2), lambda u: Probe(u, rounds=1))
        assert run.completed
        assert run.supersteps == PHASES_PER_ROUND
        assert all(p.rounds_completed == 1 for p in run.programs)

    def test_multiple_rounds(self):
        run = run_probe(path_graph(2), lambda u: Probe(u, rounds=3))
        assert run.supersteps == 3 * PHASES_PER_ROUND

    def test_done_state_on_halt(self):
        run = run_probe(path_graph(2), lambda u: Probe(u, rounds=1))
        assert all(p.state is AutomatonState.DONE for p in run.programs)


class TestRolesAndPairing:
    def test_forced_inviter_listener_pair(self):
        # Node 0 always invites, node 1 always listens.
        def factory(u):
            return Probe(u, p_invite=1.0 if u == 0 else 0.0, rounds=1)

        run = run_probe(path_graph(2), factory)
        inviter, listener = run.programs
        assert listener.accepted and listener.accepted[0].sender == 0
        assert inviter.replied and inviter.replied[0].sender == 1
        assert inviter.replied[0].color == 7

    def test_two_inviters_never_pair(self):
        def factory(u):
            return Probe(u, p_invite=1.0, rounds=1)

        run = run_probe(path_graph(2), factory)
        assert all(not p.accepted and not p.replied for p in run.programs)

    def test_two_listeners_never_pair(self):
        def factory(u):
            return Probe(u, p_invite=0.0, rounds=1)

        run = run_probe(path_graph(2), factory)
        assert all(not p.accepted and not p.replied for p in run.programs)

    def test_listener_accepts_exactly_one(self):
        # Hub listens; all leaves invite the hub.
        def factory(u):
            return Probe(u, p_invite=0.0 if u == 0 else 1.0, rounds=1)

        run = run_probe(star_graph(4), factory)
        hub = run.programs[0]
        assert len(hub.accepted) == 1
        repliers = [p for p in run.programs[1:] if p.replied]
        assert len(repliers) == 1
        assert repliers[0].node_id == hub.accepted[0].sender

    def test_reply_color_is_authoritative(self):
        class Renegotiator(Probe):
            """Accepts but answers with its own color (repair semantics)."""

            def choose_invite(self, ctx, mine, overheard):
                if mine:
                    return Invite(mine[0].sender, mine[0].target, color=99)
                return None

        def factory(u):
            cls = Probe if u == 0 else Renegotiator
            return cls(u, p_invite=1.0 if u == 0 else 0.0, rounds=1)

        run = run_probe(path_graph(2), factory)
        # The inviter pairs and takes the responder's color: responders
        # are authoritative (this is what loss-repair relies on).
        assert run.programs[0].replied[0].color == 99

    def test_reply_from_wrong_sender_ignored(self):
        # Node 1 replies to node 0 without having been invited by it:
        # node 0 invited node 2 (its only pending partner).
        class UninvitedReplier(Probe):
            def on_superstep(self, ctx, inbox):
                if ctx.superstep % PHASES_PER_ROUND == 1 and self.node_id == 1:
                    from repro.core.messages import Reply

                    ctx.broadcast(Reply(sender=1, target=0, color=7))
                    return
                super().on_superstep(ctx, inbox)

        class InviteTwoOnly(Probe):
            def make_invite(self, ctx):
                return Invite(sender=self.node_id, target=2, color=7)

        def factory(u):
            if u == 0:
                return InviteTwoOnly(u, p_invite=1.0, rounds=1)
            if u == 1:
                return UninvitedReplier(u, p_invite=0.0, rounds=1)
            return Probe(u, p_invite=1.0, rounds=1)  # node 2 invites, never replies

        run = run_probe(star_graph(2), factory)
        assert run.programs[0].replied == []  # only node 2 could pair, and it didn't


class TestExchange:
    def test_reports_delivered_to_neighbors(self):
        run = run_probe(path_graph(3), lambda u: Probe(u, rounds=1))
        middle = run.programs[1]
        senders = sorted(r.sender for r in middle.reports_seen)
        assert senders == [0, 2]

    def test_no_report_when_hook_returns_none(self):
        class Silent(Probe):
            def make_report(self, ctx):
                return None

        run = run_probe(path_graph(2), lambda u: Silent(u, rounds=1))
        assert all(p.reports_seen == [] for p in run.programs)


class TestCanInvite:
    def test_can_invite_false_forces_listener(self):
        class NeverInvites(Probe):
            def can_invite(self, ctx):
                return False

            def make_invite(self, ctx):  # pragma: no cover
                raise AssertionError("must not be called")

        run = run_probe(
            path_graph(2), lambda u: NeverInvites(u, p_invite=1.0, rounds=1)
        )
        assert run.completed
