"""``repro bench`` — launcher wiring only (the sweep itself is slow)."""

import importlib.util
from pathlib import Path

import pytest

from repro.cli import bench_main, repro_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_benchmarks_module(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "benchmarks" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_help_exits_zero():
    with pytest.raises(SystemExit) as exc:
        bench_main(["--help"])
    assert exc.value.code == 0


def test_profile_rejects_unknown_workload(capsys):
    assert bench_main(["--profile", "no-such-workload"]) == 2
    assert "unknown workload" in capsys.readouterr().err


class TestPeakRssKb:
    """peak_rss_kb must report KiB on every platform (macOS getrusage
    returns bytes; Linux returns KB) — the committed benchmark JSONs
    compare this field across contributor machines."""

    def test_plausible_magnitude_for_this_process(self):
        benchlib = _load_benchmarks_module("benchlib")
        kb = benchlib.peak_rss_kb()
        # A running pytest process holds tens of MiB; a byte reading
        # would be ~1000x larger than this window's top end.
        assert isinstance(kb, int)
        assert 1_000 < kb < 100 * 1024 * 1024

    def test_darwin_bytes_are_normalised_to_kib(self, monkeypatch):
        benchlib = _load_benchmarks_module("benchlib")

        class FakeUsage:
            ru_maxrss = 512 * 1024 * 1024  # bytes, as macOS reports

        monkeypatch.setattr(
            benchlib.resource, "getrusage", lambda who: FakeUsage
        )
        monkeypatch.setattr(benchlib.sys, "platform", "darwin")
        assert benchlib.peak_rss_kb() == 512 * 1024

    def test_linux_kb_pass_through(self, monkeypatch):
        benchlib = _load_benchmarks_module("benchlib")

        class FakeUsage:
            ru_maxrss = 524288  # already KB on Linux

        monkeypatch.setattr(
            benchlib.resource, "getrusage", lambda who: FakeUsage
        )
        monkeypatch.setattr(benchlib.sys, "platform", "linux")
        assert benchlib.peak_rss_kb() == 524288


def test_report_declares_units():
    bench = _load_benchmarks_module("bench_engine_scaling")
    # The unit annotation must travel with every written report so the
    # peak_rss_kb fields stay interpretable across machines.  run_sweep
    # itself is too slow for a unit test; pin the contract on its source.
    import inspect

    src = inspect.getsource(bench.run_sweep)
    assert '"units"' in src and "KiB" in src


def test_repro_dispatches_bench():
    with pytest.raises(SystemExit) as exc:
        repro_main(["bench", "--help"])
    assert exc.value.code == 0


def test_repro_bench_listed_in_commands(capsys):
    with pytest.raises(SystemExit):
        repro_main(["--help"])
    assert "bench" in capsys.readouterr().out
