"""``repro bench`` — launcher wiring only (the sweep itself is slow)."""

import pytest

from repro.cli import bench_main, repro_main


def test_bench_help_exits_zero():
    with pytest.raises(SystemExit) as exc:
        bench_main(["--help"])
    assert exc.value.code == 0


def test_repro_dispatches_bench():
    with pytest.raises(SystemExit) as exc:
        repro_main(["bench", "--help"])
    assert exc.value.code == 0


def test_repro_bench_listed_in_commands(capsys):
    with pytest.raises(SystemExit):
        repro_main(["--help"])
    assert "bench" in capsys.readouterr().out
