"""The per-instance ``to_csr`` cache and its mutation invalidation.

Both graph classes memoize the CSR build (the engines and the batched
core all start from it); every mutator must drop the cache or a stale
topology would silently feed the next run.
"""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import DiGraph, Graph


def _path_graph(n: int) -> Graph:
    g = Graph.from_num_nodes(n)
    for u in range(n - 1):
        g.add_edge(u, u + 1)
    return g


class TestGraphCsrCache:
    def test_second_call_returns_cached_arrays(self):
        g = _path_graph(4)
        first = g.to_csr()
        second = g.to_csr()
        assert first[0] is second[0] and first[1] is second[1]

    def test_add_edge_invalidates(self):
        g = _path_graph(4)
        indptr, indices = g.to_csr()
        g.add_edge(0, 3)
        indptr2, indices2 = g.to_csr()
        assert indptr2 is not indptr
        assert 3 in indices2[indptr2[0] : indptr2[1]].tolist()

    def test_remove_edge_invalidates(self):
        g = _path_graph(4)
        g.to_csr()
        g.remove_edge(1, 2)
        indptr, indices = g.to_csr()
        assert indices[indptr[1] : indptr[2]].tolist() == [0]

    def test_add_node_invalidates(self):
        g = _path_graph(3)
        indptr, _ = g.to_csr()
        assert len(indptr) == 4
        g.add_node(3)
        indptr2, _ = g.to_csr()
        assert len(indptr2) == 5

    def test_remove_node_invalidates(self):
        g = _path_graph(4)
        g.to_csr()
        g.remove_node(3)
        indptr, indices = g.to_csr()
        assert len(indptr) == 4
        assert 3 not in indices.tolist()

    def test_copy_starts_with_cold_cache(self):
        g = _path_graph(4)
        cached = g.to_csr()
        h = g.copy()
        hp, hi = h.to_csr()
        assert hp is not cached[0]
        np.testing.assert_array_equal(hp, cached[0])
        np.testing.assert_array_equal(hi, cached[1])

    def test_mutating_copy_leaves_original_cache_valid(self):
        g = _path_graph(4)
        before = g.to_csr()
        h = g.copy()
        h.add_edge(0, 2)
        assert g.to_csr()[0] is before[0]


class TestDiGraphCsrCache:
    def _cycle(self, n: int) -> DiGraph:
        d = DiGraph()
        d.add_nodes_from(range(n))
        for u in range(n):
            d.add_arc(u, (u + 1) % n)
        return d

    def test_second_call_returns_cached_arrays(self):
        d = self._cycle(4)
        first = d.to_csr()
        second = d.to_csr()
        assert first[0] is second[0] and first[1] is second[1]

    def test_rows_are_sorted_out_adjacency(self):
        d = DiGraph()
        d.add_nodes_from(range(3))
        d.add_arc(0, 2)
        d.add_arc(0, 1)
        d.add_arc(2, 0)
        indptr, indices = d.to_csr()
        assert indices[indptr[0] : indptr[1]].tolist() == [1, 2]
        assert indices[indptr[1] : indptr[2]].tolist() == []
        assert indices[indptr[2] : indptr[3]].tolist() == [0]

    def test_add_arc_invalidates(self):
        d = self._cycle(4)
        d.to_csr()
        d.add_arc(0, 2)
        indptr, indices = d.to_csr()
        assert indices[indptr[0] : indptr[1]].tolist() == [1, 2]

    def test_remove_arc_invalidates(self):
        d = self._cycle(4)
        d.to_csr()
        d.remove_arc(0, 1)
        indptr, indices = d.to_csr()
        assert indices[indptr[0] : indptr[1]].tolist() == []

    def test_add_node_invalidates(self):
        d = self._cycle(3)
        indptr, _ = d.to_csr()
        assert len(indptr) == 4
        d.add_node(3)
        indptr2, _ = d.to_csr()
        assert len(indptr2) == 5

    def test_noncontiguous_ids_raise(self):
        d = DiGraph()
        d.add_node(0)
        d.add_node(2)
        with pytest.raises(GraphError):
            d.to_csr()

    def test_copy_independent(self):
        d = self._cycle(4)
        before = d.to_csr()
        e = d.copy()
        e.add_arc(0, 2)
        assert d.to_csr()[0] is before[0]
        assert e.to_csr()[1].tolist() != before[1].tolist()
