"""Unit tests for line graphs and the strong-conflict graph."""

import pytest

from repro.graphs.adjacency import DiGraph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.linegraph import arcs_conflict, line_graph, strong_conflict_graph


class TestLineGraph:
    def test_path(self):
        # P4 has 3 edges in a path; its line graph is P3.
        lg, index = line_graph(path_graph(4))
        assert lg.num_nodes == 3
        assert lg.num_edges == 2
        assert set(index.values()) == {(0, 1), (1, 2), (2, 3)}

    def test_star_line_graph_is_complete(self):
        # All star edges share the hub, so L(S_k) = K_k.
        lg, _ = line_graph(star_graph(5))
        assert lg.num_nodes == 5
        assert lg.num_edges == 10

    def test_cycle_line_graph_is_cycle(self):
        lg, _ = line_graph(cycle_graph(6))
        assert lg.num_nodes == 6
        assert lg.num_edges == 6
        assert all(lg.degree(u) == 2 for u in lg)

    def test_triangle(self):
        lg, _ = line_graph(complete_graph(3))
        assert lg.num_edges == 3  # L(K3) = K3

    def test_empty(self):
        lg, index = line_graph(path_graph(1))
        assert lg.num_nodes == 0
        assert index == {}


class TestArcsConflict:
    @pytest.fixture
    def p4d(self) -> DiGraph:
        return path_graph(4).to_directed()

    def test_same_arc_no_conflict(self, p4d):
        assert not arcs_conflict(p4d, (0, 1), (0, 1))

    def test_reverse_arc_conflicts(self, p4d):
        assert arcs_conflict(p4d, (0, 1), (1, 0))

    def test_shared_endpoint_conflicts(self, p4d):
        assert arcs_conflict(p4d, (0, 1), (1, 2))
        assert arcs_conflict(p4d, (1, 0), (1, 2))

    def test_one_hop_interference_conflicts(self, p4d):
        # (0,1) and (2,3): transmitter 2 is a neighbor of receiver 1.
        assert arcs_conflict(p4d, (0, 1), (2, 3))
        # symmetric orientation check
        assert arcs_conflict(p4d, (2, 3), (0, 1))

    def test_far_arcs_do_not_conflict(self):
        d = path_graph(6).to_directed()
        assert not arcs_conflict(d, (0, 1), (4, 5))

    def test_receiver_side_only(self):
        # (1,0) and (2,3) in P4: tails 1 and 2 adjacent, but head 0's
        # neighborhood excludes 2 and head 3's excludes 1 — heads are
        # what interference is about, tails adjacent is fine.
        d = path_graph(4).to_directed()
        assert not arcs_conflict(d, (1, 0), (2, 3))


class TestStrongConflictGraph:
    def test_matches_pairwise_predicate(self):
        d = cycle_graph(5).to_directed()
        cg, index = strong_conflict_graph(d)
        arcs = [index[i] for i in range(cg.num_nodes)]
        for i in range(len(arcs)):
            for j in range(i + 1, len(arcs)):
                expected = arcs_conflict(d, arcs[i], arcs[j])
                assert cg.has_edge(i, j) == expected, (arcs[i], arcs[j])

    def test_p2_reverse_pair(self):
        d = path_graph(2).to_directed()
        cg, _ = strong_conflict_graph(d)
        assert cg.num_nodes == 2
        assert cg.num_edges == 1

    def test_all_arcs_present(self):
        d = complete_graph(4).to_directed()
        cg, index = strong_conflict_graph(d)
        assert cg.num_nodes == d.num_arcs
        assert sorted(index.values()) == d.arc_list()

    def test_k3_all_conflict(self):
        # In K3 every pair of arcs is within one hop.
        d = complete_graph(3).to_directed()
        cg, _ = strong_conflict_graph(d)
        n = cg.num_nodes
        assert cg.num_edges == n * (n - 1) // 2
