"""Unit tests for networkx conversion (cross-validation bridge)."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import DiGraph, Graph
from repro.graphs.convert import from_networkx, to_networkx
from repro.graphs.generators import erdos_renyi_gnp


class TestToNetworkx:
    def test_graph(self):
        g = Graph([(0, 1), (1, 2)])
        nxg = to_networkx(g)
        assert isinstance(nxg, nx.Graph)
        assert sorted(nxg.edges()) == [(0, 1), (1, 2)]

    def test_digraph(self):
        d = DiGraph([(0, 1), (1, 0)])
        nxd = to_networkx(d)
        assert isinstance(nxd, nx.DiGraph)
        assert nxd.number_of_edges() == 2

    def test_isolated_nodes(self):
        g = Graph.from_num_nodes(4)
        assert to_networkx(g).number_of_nodes() == 4

    def test_bad_type(self):
        with pytest.raises(GraphError):
            to_networkx("not a graph")


class TestFromNetworkx:
    def test_graph(self):
        nxg = nx.cycle_graph(5)
        g = from_networkx(nxg)
        assert isinstance(g, Graph)
        assert g.num_edges == 5

    def test_digraph(self):
        nxd = nx.DiGraph([(0, 1), (2, 1)])
        d = from_networkx(nxd)
        assert isinstance(d, DiGraph)
        assert d.has_arc(2, 1)

    def test_non_integer_labels_rejected(self):
        nxg = nx.Graph([("a", "b")])
        with pytest.raises(GraphError):
            from_networkx(nxg)

    def test_roundtrip(self):
        g = erdos_renyi_gnp(40, 0.15, seed=6)
        assert from_networkx(to_networkx(g)) == g
