"""Unit tests for edge/arc list persistence."""

import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import DiGraph, Graph
from repro.graphs.generators import erdos_renyi_gnp
from repro.graphs.io import (
    read_arc_list,
    read_edge_list,
    write_arc_list,
    write_edge_list,
)


class TestEdgeListRoundTrip:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi_gnp(30, 0.2, seed=4)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_isolated_nodes_survive(self, tmp_path):
        g = Graph.from_num_nodes(7)
        g.add_edge(0, 1)
        path = tmp_path / "iso.edges"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.num_nodes == 7
        assert back.num_edges == 1

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.edges"
        write_edge_list(Graph(), path)
        assert read_edge_list(path).num_nodes == 0

    def test_noncontiguous_labels_rejected(self, tmp_path):
        g = Graph([(5, 9)])
        with pytest.raises(GraphError):
            write_edge_list(g, tmp_path / "bad.edges")


class TestArcListRoundTrip:
    def test_roundtrip(self, tmp_path):
        d = DiGraph([(0, 1), (1, 0), (2, 0)])
        path = tmp_path / "d.arcs"
        write_arc_list(d, path)
        assert read_arc_list(path) == d

    def test_direction_preserved(self, tmp_path):
        d = DiGraph([(0, 1)])
        d.add_node(2)
        path = tmp_path / "dir.arcs"
        write_arc_list(d, path)
        back = read_arc_list(path)
        assert back.has_arc(0, 1)
        assert not back.has_arc(1, 0)


class TestParsing:
    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "manual.edges"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "bad2.edges"
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_missing_header_infers_n(self, tmp_path):
        path = tmp_path / "nohdr.edges"
        path.write_text("0 3\n")
        g = read_edge_list(path)
        assert g.num_nodes == 4


class TestGzipAndForeignFormats:
    def test_gzip_round_trip(self, tmp_path):
        g = erdos_renyi_gnp(25, 0.2, seed=9)
        path = tmp_path / "g.edges.gz"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_snap_style_relabel(self, tmp_path):
        import gzip

        path = tmp_path / "snap.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("# Directed graph (each unordered pair once)\n")
            fh.write("# Nodes: 3 Edges: 2\n")
            fh.write("9999999\t17\n17\t9999999\n17\t5\n5\t5\n")
        g, mapping = read_edge_list(path, relabel=True)
        # Both-direction arcs collapse, the self-loop is dropped, ids
        # relabel to contiguous first-seen order.
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert mapping == {9999999: 0, 17: 1, 5: 2}
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_mtx_banner_size_line_and_weights(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% a comment\n"
            "4 4 3\n"
            "1 2 0.5\n"
            "2 3 1.5\n"
            "3 4 2.5\n"
        )
        g, mapping = read_edge_list(path, relabel=True)
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_mtx_gz(self, tmp_path):
        import gzip

        path = tmp_path / "m.mtx.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("%%MatrixMarket matrix coordinate pattern general\n")
            fh.write("2 2 1\n")
            fh.write("1 2\n")
        g, mapping = read_edge_list(path, relabel=True)
        assert g.num_edges == 1

    def test_relabeled_graph_feeds_the_engine(self, tmp_path):
        import gzip

        from repro.core.edge_coloring import color_edges

        path = tmp_path / "snap.txt.gz"
        with gzip.open(path, "wt") as fh:
            for u, v in [(10, 20), (20, 30), (30, 10), (10, 40)]:
                fh.write(f"{u} {v}\n")
        g, _ = read_edge_list(path, relabel=True)
        result = color_edges(g, seed=0)
        assert len(result.colors) == g.num_edges

    def test_percent_comments_without_relabel(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("% not a snap file\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_nodes == 3 and g.num_edges == 2

    def test_four_fields_still_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3 4\n")
        with pytest.raises(GraphError):
            read_edge_list(path)


class TestIsolatedVertexIngestion:
    """Regression: declared sizes and num_vertices= preserve isolated
    vertices that appear in no edge line."""

    MTX_WITH_ISOLATES = (
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "6 6 2\n"
        "1 2\n"
        "4 5\n"
    )

    def test_mtx_declared_size_pads_relabel(self, tmp_path):
        path = tmp_path / "iso.mtx"
        path.write_text(self.MTX_WITH_ISOLATES)
        g, mapping = read_edge_list(path, relabel=True)
        # Ids 3 and 6 appear in no coordinate but are declared by the
        # size line: they must come back as isolated vertices with
        # mapping slots, in ascending id order after the edge pass.
        assert g.num_nodes == 6
        assert g.num_edges == 2
        assert set(mapping) == {1, 2, 3, 4, 5, 6}
        assert g.degree(mapping[3]) == 0
        assert g.degree(mapping[6]) == 0

    def test_mtx_declared_size_pads_without_relabel(self, tmp_path):
        path = tmp_path / "iso.mtx"
        path.write_text(self.MTX_WITH_ISOLATES)
        g = read_edge_list(path)
        # 1-based coordinates: a declared dimension of 6 means labels
        # up to 6 exist, so the 0-based graph spans 0..6.
        assert g.num_nodes == 7
        assert g.num_edges == 2

    def test_num_vertices_pads_snap_style(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# Nodes: 5 Edges: 2\n10 20\n20 30\n")
        g, mapping = read_edge_list(path, relabel=True, num_vertices=5)
        assert g.num_nodes == 5
        assert g.num_edges == 2
        # The padding nodes are anonymous: no foreign id, no mapping.
        assert len(mapping) == 3
        assert g.degree(3) == 0 and g.degree(4) == 0

    def test_num_vertices_pads_plain_read(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path, num_vertices=6)
        assert g.num_nodes == 6
        assert g.num_edges == 2

    def test_num_vertices_too_small_rejected_relabel(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("10 20\n20 30\n")
        with pytest.raises(GraphError):
            read_edge_list(path, relabel=True, num_vertices=2)

    def test_num_vertices_too_small_rejected_plain(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n1 5\n")
        with pytest.raises(GraphError):
            read_edge_list(path, num_vertices=3)

    def test_isolated_vertices_color_cleanly(self, tmp_path):
        from repro.core.edge_coloring import color_edges

        path = tmp_path / "iso.mtx"
        path.write_text(self.MTX_WITH_ISOLATES)
        g, _ = read_edge_list(path, relabel=True)
        result = color_edges(g, seed=0)
        assert len(result.colors) == g.num_edges
