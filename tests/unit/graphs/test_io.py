"""Unit tests for edge/arc list persistence."""

import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import DiGraph, Graph
from repro.graphs.generators import erdos_renyi_gnp
from repro.graphs.io import (
    read_arc_list,
    read_edge_list,
    write_arc_list,
    write_edge_list,
)


class TestEdgeListRoundTrip:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi_gnp(30, 0.2, seed=4)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_isolated_nodes_survive(self, tmp_path):
        g = Graph.from_num_nodes(7)
        g.add_edge(0, 1)
        path = tmp_path / "iso.edges"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.num_nodes == 7
        assert back.num_edges == 1

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.edges"
        write_edge_list(Graph(), path)
        assert read_edge_list(path).num_nodes == 0

    def test_noncontiguous_labels_rejected(self, tmp_path):
        g = Graph([(5, 9)])
        with pytest.raises(GraphError):
            write_edge_list(g, tmp_path / "bad.edges")


class TestArcListRoundTrip:
    def test_roundtrip(self, tmp_path):
        d = DiGraph([(0, 1), (1, 0), (2, 0)])
        path = tmp_path / "d.arcs"
        write_arc_list(d, path)
        assert read_arc_list(path) == d

    def test_direction_preserved(self, tmp_path):
        d = DiGraph([(0, 1)])
        d.add_node(2)
        path = tmp_path / "dir.arcs"
        write_arc_list(d, path)
        back = read_arc_list(path)
        assert back.has_arc(0, 1)
        assert not back.has_arc(1, 0)


class TestParsing:
    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "manual.edges"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "bad2.edges"
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_missing_header_infers_n(self, tmp_path):
        path = tmp_path / "nohdr.edges"
        path.write_text("0 3\n")
        g = read_edge_list(path)
        assert g.num_nodes == 4
