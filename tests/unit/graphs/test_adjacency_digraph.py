"""Unit tests for the directed DiGraph type."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs.adjacency import DiGraph, Graph


class TestConstruction:
    def test_empty(self):
        d = DiGraph()
        assert d.num_nodes == 0
        assert d.num_arcs == 0

    def test_from_num_nodes(self):
        d = DiGraph.from_num_nodes(3)
        assert d.nodes() == [0, 1, 2]

    def test_from_num_nodes_negative(self):
        with pytest.raises(GraphError):
            DiGraph.from_num_nodes(-2)

    def test_add_arc_directed(self):
        d = DiGraph()
        d.add_arc(0, 1)
        assert d.has_arc(0, 1)
        assert not d.has_arc(1, 0)

    def test_arc_iterable_constructor(self):
        d = DiGraph([(0, 1), (1, 0), (1, 2)])
        assert d.num_arcs == 3

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            DiGraph([(1, 1)])


class TestQueries:
    def test_successors_predecessors(self):
        d = DiGraph([(0, 1), (0, 2), (3, 0)])
        assert d.successors(0) == {1, 2}
        assert d.predecessors(0) == {3}
        assert d.out_degree(0) == 2
        assert d.in_degree(0) == 1
        assert d.degree(0) == 3

    def test_missing_node_queries(self):
        d = DiGraph()
        with pytest.raises(NodeNotFoundError):
            d.successors(0)
        with pytest.raises(NodeNotFoundError):
            d.predecessors(0)

    def test_arcs_each_once(self):
        d = DiGraph([(0, 1), (1, 0)])
        assert sorted(d.arcs()) == [(0, 1), (1, 0)]
        assert d.arc_list() == [(0, 1), (1, 0)]

    def test_contains_len_iter(self):
        d = DiGraph([(0, 1)])
        assert 0 in d and 2 not in d
        assert len(d) == 2
        assert sorted(d) == [0, 1]

    def test_is_symmetric(self):
        assert DiGraph([(0, 1), (1, 0)]).is_symmetric()
        assert not DiGraph([(0, 1)]).is_symmetric()
        assert DiGraph().is_symmetric()


class TestMutation:
    def test_remove_arc(self):
        d = DiGraph([(0, 1), (1, 0)])
        d.remove_arc(0, 1)
        assert not d.has_arc(0, 1)
        assert d.has_arc(1, 0)

    def test_remove_missing_arc(self):
        d = DiGraph([(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            d.remove_arc(1, 0)


class TestDerived:
    def test_copy_independent(self):
        d = DiGraph([(0, 1)])
        e = d.copy()
        e.add_arc(1, 0)
        assert d.num_arcs == 1
        assert e.num_arcs == 2

    def test_to_undirected_merges_orientations(self):
        d = DiGraph([(0, 1), (1, 0), (1, 2)])
        g = d.to_undirected()
        assert isinstance(g, Graph)
        assert g.num_edges == 2

    def test_reverse(self):
        d = DiGraph([(0, 1), (2, 1)])
        r = d.reverse()
        assert r.has_arc(1, 0) and r.has_arc(1, 2)
        assert r.num_arcs == 2

    def test_roundtrip_graph_digraph(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        assert g.to_directed().to_undirected() == g

    def test_equality(self):
        assert DiGraph([(0, 1)]) == DiGraph([(0, 1)])
        assert DiGraph([(0, 1)]) != DiGraph([(1, 0)])


class TestDiGraphToCsrErrorGuidance:
    def test_names_offending_ids_and_remedy(self):
        d = DiGraph([(3, 9)])
        with pytest.raises(GraphError) as exc:
            d.to_csr()
        message = str(exc.value)
        assert "3, 9" in message
        assert "relabel_for_engine" in message
