"""Unit tests for Erdős–Rényi generators."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.graphs.generators import (
    erdos_renyi_avg_degree,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
)
from repro.graphs.properties import average_degree


class TestGnp:
    def test_p_zero(self):
        g = erdos_renyi_gnp(50, 0.0, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi_gnp(10, 1.0, seed=1)
        assert g.num_edges == 45

    def test_determinism(self):
        a = erdos_renyi_gnp(80, 0.1, seed=42)
        b = erdos_renyi_gnp(80, 0.1, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = erdos_renyi_gnp(80, 0.1, seed=1)
        b = erdos_renyi_gnp(80, 0.1, seed=2)
        assert a != b

    def test_expected_edge_count(self):
        # Mean over seeds should be near p * C(n,2); generous tolerance.
        n, p = 100, 0.08
        counts = [erdos_renyi_gnp(n, p, seed=s).num_edges for s in range(30)]
        expected = p * n * (n - 1) / 2
        assert expected * 0.8 < np.mean(counts) < expected * 1.2

    def test_invalid_params(self):
        with pytest.raises(GeneratorError):
            erdos_renyi_gnp(-1, 0.5)
        with pytest.raises(GeneratorError):
            erdos_renyi_gnp(10, 1.5)
        with pytest.raises(GeneratorError):
            erdos_renyi_gnp(10, -0.1)

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(7)
        g = erdos_renyi_gnp(30, 0.2, seed=rng)
        assert g.num_nodes == 30

    def test_simple_no_self_loops(self):
        g = erdos_renyi_gnp(40, 0.3, seed=3)
        for u, v in g.edges():
            assert u != v


class TestGnm:
    @pytest.mark.parametrize("m", [0, 1, 10, 100, 190])
    def test_exact_edge_count(self, m):
        g = erdos_renyi_gnm(20, m, seed=5)
        assert g.num_edges == m

    def test_max_edges_is_complete(self):
        g = erdos_renyi_gnm(8, 28, seed=1)
        assert g.num_edges == 28

    def test_m_out_of_range(self):
        with pytest.raises(GeneratorError):
            erdos_renyi_gnm(5, 11)
        with pytest.raises(GeneratorError):
            erdos_renyi_gnm(5, -1)

    def test_determinism(self):
        assert erdos_renyi_gnm(30, 60, seed=9) == erdos_renyi_gnm(30, 60, seed=9)

    def test_dense_branch_simple(self):
        # m > max/2 exercises the index-sampling branch.
        g = erdos_renyi_gnm(12, 50, seed=2)
        assert g.num_edges == 50
        for u, v in g.edges():
            assert u != v


class TestAvgDegree:
    def test_mean_degree_near_target(self):
        degs = [
            average_degree(erdos_renyi_avg_degree(200, 8.0, seed=s))
            for s in range(10)
        ]
        assert 7.0 < np.mean(degs) < 9.0

    def test_exact_mode(self):
        g = erdos_renyi_avg_degree(100, 6.0, seed=0, exact=True)
        assert g.num_edges == 300

    def test_bad_params(self):
        with pytest.raises(GeneratorError):
            erdos_renyi_avg_degree(1, 0.0)
        with pytest.raises(GeneratorError):
            erdos_renyi_avg_degree(10, 20.0)
        with pytest.raises(GeneratorError):
            erdos_renyi_avg_degree(10, -1.0)
