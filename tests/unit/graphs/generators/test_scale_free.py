"""Unit tests for the preferential-attachment generator."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.graphs.generators import scale_free
from repro.graphs.properties import is_connected, max_degree


class TestShape:
    def test_node_and_edge_count(self):
        n, m = 60, 2
        g = scale_free(n, m, seed=1)
        assert g.num_nodes == n
        # star seed contributes m edges; each later node adds exactly m.
        assert g.num_edges == m + (n - m - 1) * m

    def test_connected(self):
        assert is_connected(scale_free(80, 2, seed=3))

    def test_min_degree_at_least_m(self):
        g = scale_free(50, 3, seed=2)
        assert min(g.degree(u) for u in g) >= 1
        # every non-seed node has degree >= m
        assert all(g.degree(u) >= 3 for u in range(4, 50))

    def test_determinism(self):
        assert scale_free(40, 2, seed=5) == scale_free(40, 2, seed=5)

    def test_invalid_params(self):
        with pytest.raises(GeneratorError):
            scale_free(5, 0)
        with pytest.raises(GeneratorError):
            scale_free(3, 3)
        with pytest.raises(GeneratorError):
            scale_free(10, 2, power=-0.5)


class TestWeighting:
    def test_higher_power_grows_hubs(self):
        # The experiment IV-B premise: more weighting -> more disparate.
        deltas_flat = [max_degree(scale_free(150, 2, power=0.0, seed=s)) for s in range(8)]
        deltas_super = [max_degree(scale_free(150, 2, power=1.8, seed=s)) for s in range(8)]
        assert np.mean(deltas_super) > np.mean(deltas_flat) * 1.5

    def test_power_one_uses_fast_path(self):
        # Same API surface either way; just confirm both paths work.
        a = scale_free(60, 2, power=1.0, seed=7)
        b = scale_free(60, 2, power=1.001, seed=7)
        assert a.num_edges == b.num_edges

    def test_zero_power_is_uniform_attachment(self):
        g = scale_free(100, 2, power=0.0, seed=9)
        assert g.num_nodes == 100
        # hubs should be mild under uniform attachment
        assert max_degree(g) < 25
