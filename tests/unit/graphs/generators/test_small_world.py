"""Unit tests for the Watts–Strogatz generator."""

import pytest

from repro.errors import GeneratorError
from repro.graphs.generators import small_world
from repro.graphs.properties import average_degree, is_connected


class TestLattice:
    def test_beta_zero_is_ring_lattice(self):
        g = small_world(12, 4, 0.0, seed=1)
        assert g.num_edges == 12 * 2  # n * k/2
        assert all(g.degree(u) == 4 for u in g)
        assert g.has_edge(0, 1) and g.has_edge(0, 2)
        assert g.has_edge(0, 11) and g.has_edge(0, 10)

    def test_k_zero_empty(self):
        g = small_world(10, 0, 0.5, seed=1)
        assert g.num_edges == 0

    def test_n_zero(self):
        g = small_world(0, 0, 0.0)
        assert g.num_nodes == 0


class TestRewiring:
    def test_edge_count_preserved(self):
        for beta in (0.1, 0.5, 1.0):
            g = small_world(30, 6, beta, seed=3)
            assert g.num_edges == 30 * 3

    def test_average_degree_preserved(self):
        g = small_world(40, 8, 0.4, seed=7)
        assert average_degree(g) == pytest.approx(8.0)

    def test_rewiring_changes_structure(self):
        lattice = small_world(40, 6, 0.0, seed=1)
        rewired = small_world(40, 6, 0.8, seed=1)
        assert lattice != rewired

    def test_usually_connected_at_moderate_beta(self):
        # Not guaranteed, but should hold for these sizes/seeds.
        assert is_connected(small_world(50, 6, 0.3, seed=11))

    def test_determinism(self):
        assert small_world(25, 4, 0.5, seed=8) == small_world(25, 4, 0.5, seed=8)

    def test_nearly_complete_graph_rewiring(self):
        # Saturated nodes must not hang the rewiring loop.
        g = small_world(6, 4, 1.0, seed=2)
        assert g.num_edges == 12


class TestValidation:
    def test_odd_k_rejected(self):
        with pytest.raises(GeneratorError):
            small_world(10, 3, 0.1)

    def test_k_too_large(self):
        with pytest.raises(GeneratorError):
            small_world(10, 10, 0.1)

    def test_bad_beta(self):
        with pytest.raises(GeneratorError):
            small_world(10, 4, 1.5)
        with pytest.raises(GeneratorError):
            small_world(10, 4, -0.2)

    def test_negative_n(self):
        with pytest.raises(GeneratorError):
            small_world(-5, 2, 0.1)
