"""Unit tests for the degree-sequence generator and Erdős–Gallai test."""

import networkx as nx
import pytest

from repro.errors import GeneratorError
from repro.graphs.generators import erdos_renyi_gnp
from repro.graphs.generators.degree_sequence import (
    degree_sequence_graph,
    is_graphical,
)


class TestErdosGallai:
    @pytest.mark.parametrize(
        "seq,expected",
        [
            ([], True),
            ([0], True),
            ([1], False),  # odd sum
            ([1, 1], True),
            ([2, 2, 2], True),  # triangle
            ([3, 3, 3, 3], True),  # K4
            ([3, 1, 1, 1], True),  # star
            ([4, 1, 1, 1, 1], True),
            ([5, 1, 1, 1, 1], False),  # degree too large + odd
            ([3, 3, 1, 1], False),  # two universal nodes force degree ≥ 2 on the rest
            ([3, 3, 2, 2], True),
            ([4, 4, 4, 1, 1], False),
            ([-1, 1], False),
            ([2, 0], False),  # degree >= n at n=2
        ],
    )
    def test_known_cases(self, seq, expected):
        assert is_graphical(seq) == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_networkx(self, seed):
        g = erdos_renyi_gnp(20, 0.2, seed=seed)
        seq = [g.degree(u) for u in sorted(g.nodes())]
        assert is_graphical(seq)
        assert nx.is_graphical(seq)

    def test_agrees_with_networkx_on_random_sequences(self):
        import random

        rng = random.Random(3)
        agreements = 0
        for _ in range(50):
            seq = [rng.randrange(0, 6) for _ in range(8)]
            assert is_graphical(seq) == nx.is_graphical(seq)
            agreements += 1
        assert agreements == 50


class TestGeneration:
    @pytest.mark.parametrize(
        "seq",
        [
            [1, 1],
            [2, 2, 2],
            [3, 3, 3, 3],
            [3, 1, 1, 1],
            [4, 3, 2, 2, 2, 1],
            [5, 5, 4, 4, 3, 3, 2, 2],
        ],
    )
    def test_exact_sequence_realized(self, seq):
        g = degree_sequence_graph(seq, seed=1)
        assert [g.degree(u) for u in range(len(seq))] == seq

    def test_replays_measured_sequence(self):
        source = erdos_renyi_gnp(30, 0.2, seed=9)
        seq = [source.degree(u) for u in sorted(source.nodes())]
        replayed = degree_sequence_graph(seq, seed=2)
        assert [replayed.degree(u) for u in range(30)] == seq

    def test_zero_sequence(self):
        g = degree_sequence_graph([0, 0, 0], seed=1)
        assert g.num_edges == 0

    def test_empty(self):
        assert degree_sequence_graph([], seed=1).num_nodes == 0

    def test_infeasible_rejected(self):
        with pytest.raises(GeneratorError):
            degree_sequence_graph([3, 1], seed=1)

    def test_determinism(self):
        seq = [3, 2, 2, 2, 1]
        assert degree_sequence_graph(seq, seed=7) == degree_sequence_graph(seq, seed=7)

    def test_simple_graph(self):
        g = degree_sequence_graph([4, 4, 3, 3, 2, 2], seed=4)
        for u, v in g.edges():
            assert u != v
