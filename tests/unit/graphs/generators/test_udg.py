"""Unit tests for the unit-disk generator."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.graphs.generators import unit_disk


class TestGeometry:
    def test_edges_match_distances_exactly(self):
        # The grid-bucketed construction must agree with the O(n²) oracle.
        g, pos = unit_disk(60, 0.25, seed=3, return_positions=True)
        n = len(pos)
        for i in range(n):
            for j in range(i + 1, n):
                within = np.linalg.norm(pos[i] - pos[j]) <= 0.25
                assert g.has_edge(i, j) == within, (i, j)

    def test_huge_radius_complete(self):
        g = unit_disk(12, 1.5, seed=1)
        assert g.num_edges == 66

    def test_tiny_radius_sparse(self):
        g = unit_disk(20, 1e-6, seed=1)
        assert g.num_edges == 0

    def test_positions_shape_and_range(self):
        _, pos = unit_disk(25, 0.2, seed=9, return_positions=True)
        assert pos.shape == (25, 2)
        assert (pos >= 0).all() and (pos <= 1).all()

    def test_determinism(self):
        assert unit_disk(30, 0.3, seed=5) == unit_disk(30, 0.3, seed=5)

    def test_default_returns_graph_only(self):
        g = unit_disk(5, 0.5, seed=1)
        assert g.num_nodes == 5


class TestValidation:
    def test_negative_n(self):
        with pytest.raises(GeneratorError):
            unit_disk(-1, 0.2)

    def test_nonpositive_radius(self):
        with pytest.raises(GeneratorError):
            unit_disk(10, 0.0)
        with pytest.raises(GeneratorError):
            unit_disk(10, -0.3)

    def test_zero_nodes(self):
        assert unit_disk(0, 0.5, seed=1).num_nodes == 0
