"""Unit tests for deterministic families and random regular graphs."""

import pytest

from repro.errors import GeneratorError
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_regular,
    star_graph,
)


class TestComplete:
    @pytest.mark.parametrize("n,m", [(0, 0), (1, 0), (2, 1), (5, 10), (8, 28)])
    def test_edge_count(self, n, m):
        assert complete_graph(n).num_edges == m

    def test_all_degrees(self):
        g = complete_graph(6)
        assert all(g.degree(u) == 5 for u in g)

    def test_negative(self):
        with pytest.raises(GeneratorError):
            complete_graph(-1)


class TestBipartite:
    def test_k23(self):
        g = complete_bipartite_graph(2, 3)
        assert g.num_nodes == 5
        assert g.num_edges == 6
        assert g.degree(0) == 3 and g.degree(4) == 2

    def test_no_intra_part_edges(self):
        g = complete_bipartite_graph(3, 3)
        for u in range(3):
            for v in range(3):
                if u != v:
                    assert not g.has_edge(u, v)

    def test_empty_part(self):
        assert complete_bipartite_graph(0, 4).num_edges == 0


class TestCyclePathStar:
    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(u) == 2 for u in g)

    def test_cycle_too_small(self):
        with pytest.raises(GeneratorError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(6)
        assert g.num_edges == 5
        assert g.degree(0) == 1 and g.degree(3) == 2

    def test_path_trivial(self):
        assert path_graph(0).num_nodes == 0
        assert path_graph(1).num_edges == 0

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_star_empty(self):
        assert star_graph(0).num_nodes == 1


class TestGrid:
    def test_dimensions(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_corner_degrees(self):
        g = grid_graph(3, 3)
        assert g.degree(0) == 2
        assert g.degree(4) == 4  # center

    def test_degenerate(self):
        assert grid_graph(1, 5).num_edges == 4
        assert grid_graph(0, 5).num_nodes == 0


class TestRandomRegular:
    @pytest.mark.parametrize("n,d", [(10, 3), (20, 4), (9, 2), (16, 5)])
    def test_regularity(self, n, d):
        g = random_regular(n, d, seed=1)
        assert g.num_nodes == n
        assert all(g.degree(u) == d for u in g)

    def test_determinism(self):
        assert random_regular(14, 3, seed=4) == random_regular(14, 3, seed=4)

    def test_d_zero(self):
        g = random_regular(5, 0, seed=1)
        assert g.num_edges == 0

    def test_odd_product_rejected(self):
        with pytest.raises(GeneratorError):
            random_regular(5, 3)

    def test_d_too_large(self):
        with pytest.raises(GeneratorError):
            random_regular(4, 4)

    def test_simple(self):
        g = random_regular(30, 6, seed=8)
        assert g.num_edges == 30 * 6 // 2  # no parallel edges collapsed
