"""Unit tests for the undirected Graph type."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs.adjacency import DiGraph, Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_from_num_nodes(self):
        g = Graph.from_num_nodes(4)
        assert g.num_nodes == 4
        assert g.nodes() == [0, 1, 2, 3]
        assert g.num_edges == 0

    def test_from_num_nodes_negative(self):
        with pytest.raises(GraphError):
            Graph.from_num_nodes(-1)

    def test_from_edge_iterable(self):
        g = Graph([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(7)
        g.add_node(7)
        assert g.num_nodes == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(3, 9)
        assert g.has_node(3) and g.has_node(9)
        assert g.has_edge(3, 9) and g.has_edge(9, 3)

    def test_add_edge_idempotent(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(2, 2)


class TestMutation:
    def test_remove_edge(self):
        g = Graph([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert g.has_node(0)  # endpoints survive

    def test_remove_missing_edge(self):
        g = Graph([(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_remove_node_detaches_neighbors(self):
        g = Graph([(0, 1), (0, 2), (1, 2)])
        g.remove_node(0)
        assert not g.has_node(0)
        assert g.has_edge(1, 2)
        assert g.degree(1) == 1

    def test_remove_missing_node(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node(5)


class TestQueries:
    def test_neighbors_and_degree(self):
        g = Graph([(0, 1), (0, 2), (0, 3)])
        assert g.neighbors(0) == {1, 2, 3}
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_neighbors_missing_node(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.neighbors(0)

    def test_contains_len_iter(self):
        g = Graph([(0, 1), (2, 3)])
        assert 0 in g and 4 not in g
        assert len(g) == 4
        assert sorted(g) == [0, 1, 2, 3]

    def test_edges_each_once_canonical(self):
        g = Graph([(1, 0), (2, 1), (0, 2)])
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_incident_edges(self):
        g = Graph([(5, 1), (5, 9)])
        assert sorted(g.incident_edges(5)) == [(1, 5), (5, 9)]

    def test_degrees_and_array(self):
        g = Graph([(0, 1), (0, 2)])
        assert g.degrees() == {0: 2, 1: 1, 2: 1}
        assert list(g.degree_array()) == [2, 1, 1]

    def test_num_edges(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        assert g.num_edges == 3


class TestDerived:
    def test_copy_is_independent(self):
        g = Graph([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2
        assert g == Graph([(0, 1)])

    def test_subgraph_induced(self):
        g = Graph([(0, 1), (1, 2), (2, 3), (3, 0)])
        s = g.subgraph([0, 1, 2])
        assert s.num_nodes == 3
        assert sorted(s.edges()) == [(0, 1), (1, 2)]

    def test_subgraph_unknown_node(self):
        g = Graph([(0, 1)])
        with pytest.raises(NodeNotFoundError):
            g.subgraph([0, 9])

    def test_relabeled_contiguous(self):
        g = Graph([(10, 20), (20, 30)])
        h, mapping = g.relabeled()
        assert sorted(h.nodes()) == [0, 1, 2]
        assert h.num_edges == 2
        # structure preserved through the mapping
        assert h.has_edge(mapping[10], mapping[20])
        assert h.has_edge(mapping[20], mapping[30])
        assert not h.has_edge(mapping[10], mapping[30])

    def test_to_directed_symmetric(self):
        g = Graph([(0, 1), (1, 2)])
        d = g.to_directed()
        assert isinstance(d, DiGraph)
        assert d.num_arcs == 4
        assert d.is_symmetric()

    def test_equality(self):
        assert Graph([(0, 1)]) == Graph([(1, 0)])
        assert Graph([(0, 1)]) != Graph([(0, 2)])
        assert Graph() != object()  # NotImplemented -> False


class TestCSRExport:
    def test_rows_are_sorted_neighbors(self):
        g = Graph([(0, 2), (0, 1), (1, 2), (2, 3)])
        indptr, indices = g.to_csr()
        assert indptr.tolist() == [0, 2, 4, 7, 8]
        rows = [
            indices[indptr[u] : indptr[u + 1]].tolist() for u in range(g.num_nodes)
        ]
        assert rows == [[1, 2], [0, 2], [0, 1, 3], [2]]

    def test_matches_neighbors_on_random_graph(self):
        import random

        rng = random.Random(7)
        g = Graph.from_num_nodes(30)
        for _ in range(80):
            u, v = rng.sample(range(30), 2)
            if not g.has_edge(u, v):
                g.add_edge(u, v)
        indptr, indices = g.to_csr()
        assert int(indptr[-1]) == 2 * g.num_edges
        for u in range(30):
            row = indices[indptr[u] : indptr[u + 1]].tolist()
            assert row == sorted(g.neighbors(u))

    def test_isolated_nodes_get_empty_rows(self):
        g = Graph.from_num_nodes(3)
        g.add_edge(0, 2)
        indptr, indices = g.to_csr()
        assert indptr.tolist() == [0, 1, 1, 2]
        assert indices.tolist() == [2, 0]

    def test_empty_graph(self):
        indptr, indices = Graph().to_csr()
        assert indptr.tolist() == [0]
        assert indices.tolist() == []

    def test_noncontiguous_ids_rejected(self):
        with pytest.raises(GraphError):
            Graph([(3, 7)]).to_csr()


class TestToCsrErrorGuidance:
    """The non-contiguous-id error must tell the user how to fix it."""

    def test_names_offending_ids_and_remedies(self):
        with pytest.raises(GraphError) as exc:
            Graph([(3, 7)]).to_csr()
        message = str(exc.value)
        assert "0..1" in message
        assert "3, 7" in message
        assert "Graph.relabeled()" in message
        assert "relabel_for_engine" in message

    def test_large_offender_list_is_truncated(self):
        g = Graph([(100 + i, 200 + i) for i in range(10)])
        with pytest.raises(GraphError) as exc:
            g.to_csr()
        message = str(exc.value)
        assert "(20 total)" in message

    def test_named_remedy_fixes_it(self):
        from repro.core._coerce import relabel_for_engine

        g = Graph([(3, 7), (7, 9)])
        work, mapping = relabel_for_engine(g)
        indptr, indices = work.to_csr()  # no raise
        assert indptr[-1] == 2 * g.num_edges
        assert sorted(mapping) == [3, 7, 9]
