"""Unit tests for DOT export."""

from repro.graphs.export_dot import VISUAL_PALETTE, to_dot, write_dot
from repro.graphs.generators import cycle_graph, path_graph


class TestUndirected:
    def test_structure(self):
        dot = to_dot(path_graph(3))
        assert dot.startswith("graph G {")
        assert "0 -- 1;" in dot and "1 -- 2;" in dot
        assert dot.rstrip().endswith("}")

    def test_coloring_painted(self):
        g = path_graph(3)
        dot = to_dot(g, edge_colors={(0, 1): 0, (1, 2): 1})
        assert VISUAL_PALETTE[0] in dot
        assert 'label="1"' in dot

    def test_uncolored_edges_plain(self):
        g = cycle_graph(4)
        dot = to_dot(g, edge_colors={(0, 1): 0})
        assert "1 -- 2;" in dot  # no attributes

    def test_palette_wraps(self):
        g = path_graph(2)
        big = len(VISUAL_PALETTE) + 3
        dot = to_dot(g, edge_colors={(0, 1): big})
        assert VISUAL_PALETTE[big % len(VISUAL_PALETTE)] in dot
        assert f'label="{big}"' in dot


class TestDirected:
    def test_arcs(self):
        d = path_graph(2).to_directed()
        dot = to_dot(d, arc_colors={(0, 1): 0, (1, 0): 1})
        assert dot.startswith("digraph G {")
        assert "0 -> 1" in dot and "1 -> 0" in dot


class TestWrite:
    def test_write(self, tmp_path):
        path = tmp_path / "g.dot"
        write_dot(path_graph(4), path, name="demo")
        text = path.read_text()
        assert "graph demo {" in text
