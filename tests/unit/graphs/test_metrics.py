"""Unit tests for structural metrics, cross-validated against networkx."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import Graph
from repro.graphs.convert import to_networkx
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_gnp,
    path_graph,
    small_world,
    star_graph,
)
from repro.graphs.metrics import (
    average_clustering,
    average_shortest_path_length,
    diameter,
    local_clustering,
    single_source_shortest_paths,
)


class TestClustering:
    def test_triangle_fully_clustered(self):
        g = complete_graph(3)
        assert local_clustering(g, 0) == 1.0
        assert average_clustering(g) == 1.0

    def test_star_zero(self):
        g = star_graph(5)
        assert average_clustering(g) == 0.0

    def test_degree_below_two_is_zero(self):
        g = path_graph(3)
        assert local_clustering(g, 0) == 0.0

    def test_empty(self):
        assert average_clustering(Graph()) == 0.0

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        g = erdos_renyi_gnp(40, 0.15, seed=seed)
        ours = average_clustering(g)
        theirs = nx.average_clustering(to_networkx(g))
        assert ours == pytest.approx(theirs)


class TestShortestPaths:
    def test_path_distances(self):
        g = path_graph(5)
        assert single_source_shortest_paths(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_disconnected_partial(self):
        g = Graph([(0, 1), (2, 3)])
        dist = single_source_shortest_paths(g, 0)
        assert 2 not in dist and 3 not in dist

    def test_cycle_average(self):
        g = cycle_graph(6)
        ours = average_shortest_path_length(g)
        theirs = nx.average_shortest_path_length(to_networkx(g))
        assert ours == pytest.approx(theirs)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx_on_connected(self, seed):
        g = small_world(30, 4, 0.3, seed=seed)
        nxg = to_networkx(g)
        if not nx.is_connected(nxg):
            pytest.skip("disconnected sample")
        assert average_shortest_path_length(g) == pytest.approx(
            nx.average_shortest_path_length(nxg)
        )

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            average_shortest_path_length(Graph.from_num_nodes(1))

    def test_no_edges_rejected(self):
        with pytest.raises(GraphError):
            average_shortest_path_length(Graph.from_num_nodes(3))


class TestDiameter:
    def test_path(self):
        assert diameter(path_graph(7)) == 6

    def test_complete(self):
        assert diameter(complete_graph(5)) == 1

    def test_disconnected_none(self):
        assert diameter(Graph([(0, 1), (2, 3)])) is None

    def test_empty_none(self):
        assert diameter(Graph()) is None

    def test_matches_networkx(self):
        g = small_world(24, 4, 0.2, seed=9)
        nxg = to_networkx(g)
        if nx.is_connected(nxg):
            assert diameter(g) == nx.diameter(nxg)


class TestSmallWorldRegime:
    """The FIG5 workload must actually be small-world (clustered + short paths)."""

    def test_ws_more_clustered_than_er_at_equal_density(self):
        ws = small_world(100, 8, 0.2, seed=1)
        er = erdos_renyi_gnp(100, 8 / 99, seed=1)
        assert average_clustering(ws) > 3 * max(average_clustering(er), 0.01)

    def test_ws_paths_stay_short(self):
        ws = small_world(100, 8, 0.2, seed=2)
        assert average_shortest_path_length(ws) < 5.0
