"""Unit tests for structural graph properties."""

import pytest

from repro.graphs.adjacency import DiGraph, Graph
from repro.graphs.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graphs.properties import (
    average_degree,
    bfs_order,
    connected_components,
    degree_histogram,
    density,
    is_connected,
    max_degree,
    min_degree,
)


class TestDegrees:
    def test_max_degree_star(self):
        assert max_degree(star_graph(7)) == 7

    def test_max_degree_empty(self):
        assert max_degree(Graph()) == 0

    def test_min_degree(self):
        assert min_degree(star_graph(7)) == 1
        assert min_degree(Graph()) == 0

    def test_average_degree_cycle(self):
        assert average_degree(cycle_graph(5)) == pytest.approx(2.0)

    def test_average_degree_empty(self):
        assert average_degree(Graph()) == 0.0

    def test_degree_histogram(self):
        hist = degree_histogram(star_graph(4))
        assert hist == {1: 4, 4: 1}

    def test_digraph_uses_out_degree(self):
        d = DiGraph([(0, 1), (0, 2), (1, 0)])
        assert max_degree(d) == 2  # node 0 out-degree

    def test_symmetric_digraph_delta_matches_underlying(self):
        g = complete_graph(5)
        assert max_degree(g.to_directed()) == max_degree(g)


class TestDensity:
    def test_complete(self):
        assert density(complete_graph(6)) == pytest.approx(1.0)

    def test_empty_and_single(self):
        assert density(Graph()) == 0.0
        assert density(Graph.from_num_nodes(1)) == 0.0

    def test_half(self):
        g = Graph([(0, 1)])
        g.add_node(2)
        assert density(g) == pytest.approx(1 / 3)


class TestComponents:
    def test_single_component(self):
        assert is_connected(cycle_graph(4))
        assert len(connected_components(cycle_graph(4))) == 1

    def test_two_components(self):
        g = Graph([(0, 1), (2, 3)])
        comps = connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]
        assert not is_connected(g)

    def test_isolated_nodes_are_components(self):
        g = Graph.from_num_nodes(3)
        assert len(connected_components(g)) == 3

    def test_empty_is_connected(self):
        assert is_connected(Graph())


class TestBfsOrder:
    def test_path_from_end(self):
        assert bfs_order(path_graph(4), 0) == [0, 1, 2, 3]

    def test_star_visits_all_leaves(self):
        order = bfs_order(star_graph(3), 0)
        assert order[0] == 0
        assert sorted(order[1:]) == [1, 2, 3]

    def test_restricted_to_component(self):
        g = Graph([(0, 1), (2, 3)])
        assert sorted(bfs_order(g, 0)) == [0, 1]
