"""Unit tests for the memmapped CSR shard store (:mod:`repro.graphs.shards`)."""

import json

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import erdos_renyi_avg_degree, star_graph
from repro.graphs.shards import (
    MANIFEST_NAME,
    ShardSet,
    sharded_available,
    write_graph_shards,
    write_shards,
)


def _er(n=80, deg=5.0, seed=3):
    g, _ = erdos_renyi_avg_degree(n, deg, seed=seed).relabeled()
    return g


class TestWriteAndRoundTrip:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_csr_round_trips_through_shards(self, tmp_path, num_shards):
        g = _er()
        indptr, indices = g.to_csr()
        ss = write_shards(indptr, indices, tmp_path / "s", num_shards)
        rt_indptr, rt_indices = ss.assemble_csr()
        assert (rt_indptr == indptr).all()
        assert (rt_indices == indices).all()

    def test_reopen_from_directory(self, tmp_path):
        g = _er()
        write_graph_shards(g, tmp_path / "s", 3)
        ss = ShardSet(tmp_path / "s")
        assert ss.n == g.num_nodes
        assert ss.m == 2 * g.num_edges
        assert ss.num_shards == 3
        indptr, indices = g.to_csr()
        rt_indptr, rt_indices = ss.assemble_csr()
        assert (rt_indptr == indptr).all()
        assert (rt_indices == indices).all()

    def test_strided_ownership_partitions_all_nodes(self, tmp_path):
        ss = write_graph_shards(_er(), tmp_path / "s", 4)
        owned = np.concatenate([ss.owned(s) for s in range(4)])
        assert sorted(owned.tolist()) == list(range(ss.n))
        for s in range(4):
            assert (ss.owned(s) % 4 == s).all()

    def test_global_degrees_and_starts(self, tmp_path):
        g = _er()
        indptr, indices = g.to_csr()
        ss = write_shards(indptr, indices, tmp_path / "s", 3)
        assert (ss.global_degrees() == np.diff(indptr)).all()
        starts = ss.global_starts()
        deg = ss.global_degrees()
        flat = ss.open_indices(0)
        # Row u's neighbors live at starts[u] .. starts[u]+deg[u] of the
        # concatenated shard-local edge space.
        base = [ss.open_indices(s) for s in range(3)]
        edge_base = ss.edge_base
        for u in (0, 1, ss.n // 2, ss.n - 1):
            s = u % 3
            lo = int(starts[u]) - int(edge_base[s])
            seg = np.asarray(base[s][lo : lo + int(deg[u])])
            assert sorted(seg.tolist()) == sorted(g.neighbors(u))

    def test_star_graph_skew(self, tmp_path):
        g, _ = star_graph(33).relabeled()
        indptr, indices = g.to_csr()
        ss = write_shards(indptr, indices, tmp_path / "s", 4)
        rt_indptr, rt_indices = ss.assemble_csr()
        assert (rt_indptr == indptr).all() and (rt_indices == indices).all()


class TestValidation:
    def test_rejects_zero_shards(self, tmp_path):
        g = _er(20, 3.0)
        with pytest.raises(GraphError):
            write_graph_shards(g, tmp_path / "s", 0)

    def test_rejects_noncontiguous_graph(self, tmp_path):
        g = erdos_renyi_avg_degree(20, 3.0, seed=1)  # unrelabeled
        indptr, indices = np.array([0, 1], dtype=np.int64), np.array(
            [5], dtype=np.int64
        )
        with pytest.raises(GraphError):
            write_shards(indptr, indices, tmp_path / "s", 1)

    def test_missing_manifest_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(GraphError):
            ShardSet(tmp_path / "empty")

    def test_newer_schema_refused(self, tmp_path):
        ss = write_graph_shards(_er(20, 3.0), tmp_path / "s", 2)
        manifest = json.loads((tmp_path / "s" / MANIFEST_NAME).read_text())
        manifest["schema"] = 99
        (tmp_path / "s" / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(GraphError):
            ShardSet(tmp_path / "s")

    def test_tampered_edge_counts_refused(self, tmp_path):
        write_graph_shards(_er(20, 3.0), tmp_path / "s", 2)
        manifest = json.loads((tmp_path / "s" / MANIFEST_NAME).read_text())
        manifest["shards"][0]["m_local"] += 1
        (tmp_path / "s" / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(GraphError):
            ShardSet(tmp_path / "s")


class TestAvailabilityProbe:
    def test_probe_succeeds_here(self):
        assert sharded_available() is True

    def test_probe_is_cached(self):
        assert sharded_available() is sharded_available()
