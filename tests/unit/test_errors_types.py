"""Unit tests for the error hierarchy and shared types."""

import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    EdgeNotFoundError,
    GeneratorError,
    GraphError,
    MessagingViolation,
    NodeNotFoundError,
    ReproError,
    RuntimeModelError,
    VerificationError,
)
from repro.types import canonical_edge


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError("x"),
            NodeNotFoundError(3),
            EdgeNotFoundError(1, 2),
            GeneratorError("x"),
            RuntimeModelError("x"),
            MessagingViolation("x"),
            ConvergenceError("x", rounds=5),
            VerificationError("x"),
            ConfigurationError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_node_not_found_is_keyerror(self):
        assert isinstance(NodeNotFoundError(1), KeyError)

    def test_generator_error_is_valueerror(self):
        assert isinstance(GeneratorError("x"), ValueError)

    def test_verification_error_is_assertionerror(self):
        assert isinstance(VerificationError("x"), AssertionError)

    def test_convergence_error_carries_rounds(self):
        assert ConvergenceError("x", rounds=12).rounds == 12

    def test_messaging_violation_is_model_error(self):
        assert isinstance(MessagingViolation("x"), RuntimeModelError)

    def test_not_found_messages(self):
        assert "3" in str(NodeNotFoundError(3))
        assert "(1" in str(EdgeNotFoundError(1, 2))


class TestCanonicalEdge:
    def test_sorted(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_equal_endpoints(self):
        assert canonical_edge(3, 3) == (3, 3)
