"""Unit tests for the seeded localized recoloring core."""

import pytest

from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.core.dima2ed import strong_color_arcs
from repro.graphs.adjacency import Graph
from repro.graphs.generators import erdos_renyi_avg_degree, small_world
from repro.serve.incremental import (
    FallbackRequired,
    incremental_arc_colors,
    incremental_edge_colors,
)
from repro.types import canonical_edge
from repro.verify.edge_coloring import (
    check_edge_coloring_complete,
    check_proper_edge_coloring,
)
from repro.verify.strong_coloring import check_strong_arc_coloring


def _colored_graph(n=24, avg=4.0, seed=3):
    g = erdos_renyi_avg_degree(n, avg, seed=seed)
    result = color_edges(g, seed=seed)
    return g, dict(result.colors)


def _non_edge(g):
    nodes = g.nodes()
    for u in nodes:
        for v in nodes:
            if u < v and not g.has_edge(u, v):
                return u, v
    raise AssertionError("graph is complete")


class TestIncrementalEdgeColors:
    def test_single_insertion_stays_proper(self):
        g, colors = _colored_graph()
        u, v = _non_edge(g)
        g.add_edge(u, v)
        out = incremental_edge_colors(g, colors, [(u, v)], seed=1)
        assert set(out.colors) == {canonical_edge(u, v)}
        colors.update(out.colors)
        assert check_proper_edge_coloring(g, colors) == []
        assert check_edge_coloring_complete(g, colors) == []
        assert out.subgraph_nodes == 2
        assert out.subgraph_edges == 1
        assert out.rounds >= 1

    def test_batch_insertion_stays_proper(self):
        g, colors = _colored_graph(seed=9)
        new = []
        for _ in range(5):
            u, v = _non_edge(g)
            g.add_edge(u, v)
            new.append((u, v))
        out = incremental_edge_colors(g, colors, new, seed=2)
        assert len(out.colors) == len(new)
        colors.update(out.colors)
        assert check_proper_edge_coloring(g, colors) == []
        assert check_edge_coloring_complete(g, colors) == []

    def test_avoids_colors_of_incident_old_edges(self):
        # Star center: every palette color is taken, the new spoke must
        # get a fresh one.
        g = Graph([(0, i) for i in range(1, 6)])
        colors = {canonical_edge(0, i): i - 1 for i in range(1, 6)}
        g.add_edge(0, 6)
        out = incremental_edge_colors(g, colors, [(0, 6)], seed=0)
        assert out.colors[canonical_edge(0, 6)] not in set(colors.values())

    def test_empty_new_edges_is_a_noop(self):
        g, colors = _colored_graph()
        out = incremental_edge_colors(g, colors, [], seed=0)
        assert out.colors == {}
        assert out.rounds == 0

    def test_nonconvergence_raises_fallback(self):
        g, colors = _colored_graph(seed=5)
        new = []
        for _ in range(4):
            u, v = _non_edge(g)
            g.add_edge(u, v)
            new.append((u, v))
        with pytest.raises(FallbackRequired):
            incremental_edge_colors(
                g, colors, new, seed=0, params=EdgeColoringParams(max_rounds=1)
            )

    def test_deterministic_in_seed(self):
        g, colors = _colored_graph(seed=7)
        u, v = _non_edge(g)
        g.add_edge(u, v)
        a = incremental_edge_colors(g, dict(colors), [(u, v)], seed=42)
        b = incremental_edge_colors(g, dict(colors), [(u, v)], seed=42)
        assert a.colors == b.colors and a.rounds == b.rounds


class TestIncrementalArcColors:
    def _colored_digraph(self, n=18, seed=4):
        g = small_world(n, 4, 0.2, seed=seed)
        result = strong_color_arcs(g.to_directed(), seed=seed)
        return g, dict(result.colors)

    def test_single_insertion_stays_strong(self):
        g, colors = self._colored_digraph()
        u, v = _non_edge(g)
        g.add_edge(u, v)
        out = incremental_arc_colors(g, colors, [(u, v)], seed=1)
        assert (u, v) in out.colors and (v, u) in out.colors
        colors.update(out.colors)
        assert check_strong_arc_coloring(
            g.to_directed(), colors, complete=True
        ) == []

    def test_insertion_invalidates_conflicting_old_arcs(self):
        # Path 0-1 and 2-3 carry the same channels on matching arc
        # directions; adding {1, 2} makes (0,1) conflict with (2,3)
        # via the new adjacency, so old arcs must be recolored too.
        g = Graph([(0, 1), (2, 3)])
        colors = {(0, 1): 0, (1, 0): 1, (2, 3): 0, (3, 2): 1}
        assert check_strong_arc_coloring(g.to_directed(), colors) == []
        g.add_edge(1, 2)
        out = incremental_arc_colors(g, colors, [(1, 2)], seed=3)
        colors.update(out.colors)
        assert check_strong_arc_coloring(
            g.to_directed(), colors, complete=True
        ) == []
        # The rerun covered more than just the new edge's two arcs.
        assert len(out.colors) > 2

    def test_batch_insertion_stays_strong(self):
        g, colors = self._colored_digraph(seed=11)
        new = []
        for _ in range(3):
            u, v = _non_edge(g)
            g.add_edge(u, v)
            new.append((u, v))
        out = incremental_arc_colors(g, colors, new, seed=2)
        colors.update(out.colors)
        assert check_strong_arc_coloring(
            g.to_directed(), colors, complete=True
        ) == []

    def test_empty_new_edges_is_a_noop(self):
        g, colors = self._colored_digraph()
        out = incremental_arc_colors(g, colors, [], seed=0)
        assert out.colors == {}
