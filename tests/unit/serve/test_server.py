"""Unit and integration tests for the coloring server.

Most cases drive :meth:`ColoringServer.handle_request` /
:meth:`handle_line` synchronously — the same code path the event loop
runs, minus the sockets.  One end-to-end case starts a real server on a
loopback port via :class:`ServerThread` and talks NDJSON through
:class:`ServeClient`.
"""

import json

import pytest

from repro.errors import ProtocolError
from repro.obs.live import SnapshotPublisher, read_ring
from repro.obs.registry import MetricsRegistry
from repro.serve.protocol import ServeClient
from repro.serve.server import ColoringServer, ServerThread
from repro.serve.session import SessionManager


def _server(**kwargs):
    return ColoringServer(SessionManager(), **kwargs)


def _ok(server, op, **fields):
    payload = server.handle_request({"op": op, **fields})
    return payload


class TestSynchronousCore:
    def test_ping(self):
        server = _server()
        out = _ok(server, "ping")
        assert out["pong"] is True and out["sessions"] == 0
        assert server.requests_total == 1

    def test_create_info_color_drop(self):
        server = _server()
        created = _ok(
            server, "create", name="g", edges=[[0, 1], [1, 2]], seed=4
        )
        assert created["session"]["edges"] == 2
        info = _ok(server, "info", name="g")["session"]
        assert info["name"] == "g" and info["algorithm"] == "alg1"
        color = _ok(server, "color", name="g", u=0, v=1)
        assert isinstance(color["color"], int)
        assert _ok(server, "drop", name="g") == {"dropped": "g"}
        assert _ok(server, "sessions") == {"sessions": []}

    def test_mutate_and_colors(self):
        server = _server()
        _ok(server, "create", name="g", edges=[[0, 1], [1, 2]], seed=1)
        out = _ok(
            server,
            "mutate",
            name="g",
            mutations=[{"op": "add_edge", "u": 2, "v": 0}],
        )["outcome"]
        assert out["applied"] == 1 and out["violations"] == []
        colors = _ok(server, "colors", name="g")["colors"]
        assert len(colors) == 3
        assert all(len(row) == 3 for row in colors)

    def test_stats_counts_requests(self):
        server = _server()
        _ok(server, "ping")
        out = _ok(server, "stats")
        assert out["requests"] == 2
        assert out["totals"]["sessions"] == 0

    def test_missing_name_is_protocol_error(self):
        server = _server()
        with pytest.raises(ProtocolError):
            server.handle_request({"op": "info"})

    def test_unknown_session_error_response(self):
        server = _server()
        raw = server.handle_line(
            b'{"op": "info", "name": "missing", "id": 9}\n'
        )
        response = json.loads(raw)
        assert response["ok"] is False and response["id"] == 9
        assert "missing" in response["error"]

    def test_malformed_line_yields_error_not_exception(self):
        server = _server()
        response = json.loads(server.handle_line(b"garbage\n"))
        assert response["ok"] is False

    def test_color_of_non_edge_rejected(self):
        server = _server()
        _ok(server, "create", name="g", edges=[[0, 1]])
        raw = server.handle_line(
            b'{"op": "color", "name": "g", "u": 0, "v": 5}\n'
        )
        assert json.loads(raw)["ok"] is False


class TestMetrics:
    def test_registry_counters_accumulate(self):
        registry = MetricsRegistry()
        server = _server(registry=registry)
        _ok(server, "create", name="g", edges=[[0, 1], [1, 2]], seed=2)
        _ok(
            server,
            "mutate",
            name="g",
            mutations=[{"op": "add_edge", "u": 2, "v": 0}],
        )
        server.handle_line(b"garbage\n")
        snap = registry.snapshot()
        requests = {
            sample["labels"]["op"]: sample["value"]
            for sample in snap["repro_serve_requests"]["samples"]
        }
        assert requests["create"] == 1 and requests["mutate"] == 1
        assert snap["repro_serve_errors"]["samples"][0]["value"] == 1
        assert snap["repro_serve_mutations"]["samples"][0]["value"] == 1
        assert snap["repro_serve_sessions"]["samples"][0]["value"] == 1
        # Exactly one recoloring path was taken for the one batch.
        batch_samples = snap["repro_serve_batches"]["samples"]
        assert sum(sample["value"] for sample in batch_samples) == 1

    def test_publisher_receives_request_totals(self, tmp_path):
        ring = tmp_path / "serve.jsonl"
        publisher = SnapshotPublisher(ring, interval=0.0)
        server = _server(publisher=publisher)
        _ok(server, "create", name="g", edges=[[0, 1]])
        _ok(server, "ping")
        server._publish_snapshot(final=True)
        rows = read_ring(ring)
        last = rows[-1]["snapshot"]
        assert last["final"] is True
        assert last["messages_sent"] == 2
        assert last["sessions"] == 1


class TestEndToEnd:
    def test_socket_round_trip_with_persistence(self, tmp_path):
        manager = SessionManager(state_dir=tmp_path)
        server = ColoringServer(manager)
        with ServerThread(server) as srv:
            with ServeClient(srv.host, srv.port, timeout=30.0) as client:
                pong = client.request("ping")
                assert pong["version"] >= 1
                client.request(
                    "create", name="e2e", edges=[[0, 1], [1, 2], [2, 3]]
                )
                out = client.request(
                    "mutate",
                    name="e2e",
                    mutations=[{"op": "add_edge", "u": 3, "v": 0}],
                )["outcome"]
                assert out["violations"] == []
                color = client.request("color", name="e2e", u=3, v=0)
                assert isinstance(color["color"], int)
                with pytest.raises(ProtocolError):
                    client.request("info", name="nope")
        # Server shutdown saved the session state.
        assert (tmp_path / "e2e.session.json").exists()
        fresh = SessionManager(state_dir=tmp_path)
        assert fresh.load() == 1
        assert fresh.get("e2e").graph.has_edge(3, 0)
