"""Unit tests for coloring sessions and the session manager."""

import json

import pytest

from repro.errors import ServeError
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.serve.session import (
    ColoringSession,
    Mutation,
    SessionManager,
)
from repro.types import canonical_edge
from repro.verify.edge_coloring import (
    check_edge_coloring_complete,
    check_proper_edge_coloring,
)
from repro.verify.strong_coloring import check_strong_arc_coloring


def _session(algorithm="alg1", n=20, seed=2):
    g = erdos_renyi_avg_degree(n, 4.0, seed=seed)
    s = ColoringSession("s", algorithm=algorithm, seed=seed)
    s.load_edges(g.edge_list(), g.num_nodes)
    return s


def _assert_valid(s):
    if s.algorithm == "dima2ed":
        assert check_strong_arc_coloring(
            s.graph.to_directed(), s.colors, complete=True
        ) == []
    else:
        assert check_proper_edge_coloring(s.graph, s.colors) == []
        assert check_edge_coloring_complete(s.graph, s.colors) == []


class TestMutationValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ServeError):
            Mutation("paint_edge", 0, 1)

    def test_edge_ops_need_both_endpoints(self):
        with pytest.raises(ServeError):
            Mutation("add_edge", 0)

    def test_vertex_ops_take_no_second_endpoint(self):
        with pytest.raises(ServeError):
            Mutation("add_vertex", 0, 1)

    def test_bool_endpoints_rejected(self):
        with pytest.raises(ServeError):
            Mutation("add_edge", True, 1)

    def test_from_dict_round_trip(self):
        m = Mutation.from_dict({"op": "add_edge", "u": 3, "v": 7})
        assert m.to_dict() == {"op": "add_edge", "u": 3, "v": 7}

    def test_from_dict_unknown_fields_rejected(self):
        with pytest.raises(ServeError):
            Mutation.from_dict({"op": "add_vertex", "u": 1, "weight": 2})


class TestSessionLifecycle:
    def test_bad_name_rejected(self):
        with pytest.raises(ServeError):
            ColoringSession("../etc/passwd")

    def test_bad_algorithm_rejected(self):
        with pytest.raises(ServeError):
            ColoringSession("s", algorithm="greedy")

    def test_initial_coloring_is_proper(self):
        s = _session()
        _assert_valid(s)
        assert s.info()["edges"] == s.graph.num_edges

    def test_double_populate_rejected(self):
        s = _session()
        with pytest.raises(ServeError):
            s.load_edges([(0, 1)])


class TestMutationBatches:
    @pytest.mark.parametrize("algorithm", ["alg1", "dima2ed"])
    def test_mixed_batch_stays_valid(self, algorithm):
        s = _session(algorithm=algorithm, n=14)
        u, v = next(
            (a, b)
            for a in s.graph.nodes()
            for b in s.graph.nodes()
            if a < b and not s.graph.has_edge(a, b)
        )
        out = s.apply(
            [
                Mutation("add_edge", u, v),
                Mutation("add_vertex", 100),
                Mutation("add_edge", 100, u),
            ]
        )
        assert out.applied == 3
        assert out.new_edges == 2
        _assert_valid(s)

    def test_removal_only_batch_never_recolors(self):
        s = _session()
        u, v = s.graph.edge_list()[0]
        before = s.stats["full_runs"]
        out = s.apply([Mutation("remove_edge", u, v)])
        assert out.new_edges == 0 and out.removed_edges == 1
        assert out.incremental and not out.fallback
        assert s.stats["full_runs"] == before
        assert canonical_edge(u, v) not in s.colors
        _assert_valid(s)

    def test_remove_vertex_drops_incident_colors(self):
        s = _session()
        victim = max(s.graph.nodes(), key=s.graph.degree)
        degree = s.graph.degree(victim)
        out = s.apply([Mutation("remove_vertex", victim)])
        assert out.removed_edges == degree
        assert not any(victim in edge for edge in s.colors)
        _assert_valid(s)

    def test_batch_is_atomic_on_invalid_mutation(self):
        s = _session()
        nodes = s.graph.num_nodes
        edges = s.graph.num_edges
        colors = dict(s.colors)
        with pytest.raises(ServeError):
            s.apply(
                [
                    Mutation("add_vertex", 500),
                    Mutation("remove_edge", 500, 501),  # not an edge
                ]
            )
        assert s.graph.num_nodes == nodes
        assert s.graph.num_edges == edges
        assert s.colors == colors

    def test_self_loop_rejected(self):
        s = _session()
        with pytest.raises(ServeError):
            s.apply([Mutation("add_edge", 3, 3)])

    def test_duplicate_add_edge_is_noop(self):
        s = _session()
        u, v = s.graph.edge_list()[0]
        out = s.apply([Mutation("add_edge", u, v)])
        assert out.new_edges == 0

    def test_add_then_remove_in_one_batch(self):
        s = _session()
        out = s.apply(
            [
                Mutation("add_vertex", 300),
                Mutation("add_vertex", 301),
                Mutation("add_edge", 300, 301),
                Mutation("remove_edge", 300, 301),
            ]
        )
        assert out.new_edges == 0
        # The edge never existed before the batch, so it is not counted
        # as removed either.
        assert out.removed_edges == 0
        _assert_valid(s)

    def test_non_incremental_mode_always_reruns(self):
        s = ColoringSession("full", seed=1, incremental=False)
        s.load_edges([(0, 1), (1, 2)])
        runs = s.stats["full_runs"]
        out = s.apply([Mutation("add_edge", 2, 0)])
        assert not out.incremental and not out.fallback
        assert s.stats["full_runs"] == runs + 1
        _assert_valid(s)

    def test_stats_accumulate(self):
        s = _session()
        s.apply([Mutation("add_vertex", 200)])
        s.apply([Mutation("add_edge", 200, 0)])
        assert s.stats["batches"] == 2
        assert s.stats["mutations"] == 2
        assert s.batches == 2


class TestQueries:
    def test_color_of_counts_queries(self):
        s = _session()
        u, v = s.graph.edge_list()[0]
        expected = s.colors[canonical_edge(u, v)]
        assert expected is not None
        assert s.color_of(u, v) == expected
        assert s.color_of(v, u) == expected
        assert s.stats["queries"] == 2

    def test_arc_query_is_directional(self):
        s = _session(algorithm="dima2ed", n=10)
        u, v = s.graph.edge_list()[0]
        assert s.color_of(u, v) == s.colors[(u, v)]
        assert s.color_of(v, u) == s.colors[(v, u)]


class TestPersistence:
    def test_state_round_trip(self):
        s = _session()
        s.apply([Mutation("add_vertex", 99), Mutation("add_edge", 99, 0)])
        state = json.loads(json.dumps(s.to_state()))
        back = ColoringSession.from_state(state)
        assert back.graph == s.graph
        assert back.colors == s.colors
        assert back.batches == s.batches
        assert back.stats == s.stats

    def test_arc_state_round_trip(self):
        s = _session(algorithm="dima2ed", n=10)
        back = ColoringSession.from_state(
            json.loads(json.dumps(s.to_state()))
        )
        assert back.colors == s.colors

    def test_tampered_state_rejected(self):
        s = _session()
        state = s.to_state()
        # Force two incident edges onto one color.
        edges = s.graph.incident_edges(0)
        if len(edges) >= 2:
            state_colors = {
                (u, v): c for u, v, c in state["colors"]
            }
            (a, b), (c, d) = edges[0], edges[1]
            state_colors[canonical_edge(c, d)] = state_colors[
                canonical_edge(a, b)
            ]
            state["colors"] = [
                [u, v, c] for (u, v), c in sorted(state_colors.items())
            ]
            with pytest.raises(Exception):
                ColoringSession.from_state(state)

    def test_newer_format_refused(self):
        s = _session()
        state = s.to_state()
        state["format"] = 99
        with pytest.raises(ServeError):
            ColoringSession.from_state(state)


class TestSessionManager:
    def test_create_get_drop(self, tmp_path):
        mgr = SessionManager(state_dir=tmp_path)
        mgr.create("a", edges=[(0, 1)])
        assert mgr.names() == ["a"]
        with pytest.raises(ServeError):
            mgr.create("a")
        mgr.drop("a")
        with pytest.raises(ServeError):
            mgr.get("a")

    def test_save_load_round_trip(self, tmp_path):
        mgr = SessionManager(state_dir=tmp_path, default_seed=3)
        mgr.create("x", edges=[(0, 1), (1, 2)])
        mgr.create("y", algorithm="dima2ed", edges=[(0, 1)])
        assert mgr.save() == 2
        fresh = SessionManager(state_dir=tmp_path)
        assert fresh.load() == 2
        assert fresh.get("x").colors == mgr.get("x").colors
        assert fresh.get("y").algorithm == "dima2ed"

    def test_drop_removes_state_file(self, tmp_path):
        mgr = SessionManager(state_dir=tmp_path)
        mgr.create("gone", edges=[(0, 1)])
        mgr.save()
        assert (tmp_path / "gone.session.json").exists()
        mgr.drop("gone")
        assert not (tmp_path / "gone.session.json").exists()

    def test_totals_aggregate(self):
        mgr = SessionManager()
        mgr.create("a", edges=[(0, 1)])
        mgr.create("b", edges=[(0, 1)])
        totals = mgr.totals()
        assert totals["sessions"] == 2
        assert totals["full_runs"] == 2
