"""Unit tests for NDJSON framing and the blocking client helpers."""

import json

import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    REQUEST_OPS,
    encode,
    error_response,
    ok_response,
    parse_mutations,
    parse_request,
)
from repro.serve.session import Mutation


class TestParseRequest:
    def test_valid_request_round_trips(self):
        req = parse_request(b'{"op": "ping", "id": 7}')
        assert req == {"op": "ping", "id": 7}

    def test_string_ids_allowed(self):
        assert parse_request(b'{"op": "ping", "id": "a"}')["id"] == "a"

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b"{not json")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b"[1, 2, 3]")

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b'{"id": 1}')

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b'{"op": "colour"}')

    def test_non_scalar_id_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b'{"op": "ping", "id": [1]}')

    def test_oversized_line_rejected(self):
        line = b'{"op": "ping", "pad": "' + b"x" * MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError):
            parse_request(line)

    def test_version_is_positive_int(self):
        assert isinstance(PROTOCOL_VERSION, int) and PROTOCOL_VERSION >= 1

    def test_every_op_is_a_known_string(self):
        assert all(isinstance(op, str) for op in REQUEST_OPS)
        assert len(set(REQUEST_OPS)) == len(REQUEST_OPS)


class TestParseMutations:
    def test_parses_list_of_dicts(self):
        out = parse_mutations(
            [{"op": "add_edge", "u": 0, "v": 1}, {"op": "add_vertex", "u": 2}]
        )
        assert out == [Mutation("add_edge", 0, 1), Mutation("add_vertex", 2)]

    def test_empty_list_rejected(self):
        with pytest.raises(ProtocolError):
            parse_mutations([])

    def test_non_list_rejected(self):
        with pytest.raises(ProtocolError):
            parse_mutations({"op": "add_vertex", "u": 1})

    def test_bad_entry_propagates_serve_error(self):
        with pytest.raises(Exception):
            parse_mutations([{"op": "shrink", "u": 1}])


class TestEncodeAndResponses:
    def test_encode_is_one_newline_terminated_line(self):
        raw = encode({"ok": True, "x": 1})
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        assert json.loads(raw) == {"ok": True, "x": 1}

    def test_ok_response_echoes_id(self):
        assert ok_response(3, pong=True) == {"ok": True, "id": 3, "pong": True}
        assert ok_response(None) == {"ok": True}

    def test_error_response_shape(self):
        assert error_response("q", "boom") == {
            "ok": False,
            "id": "q",
            "error": "boom",
        }
        assert error_response(None, "boom") == {"ok": False, "error": "boom"}
