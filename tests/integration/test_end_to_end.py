"""End-to-end integration: algorithms on every generator family, verified.

These tests cross module boundaries on purpose: generator -> engine ->
algorithm -> verifier, using only public API entry points.
"""

import pytest

from repro import (
    color_edges,
    find_maximal_matching,
    find_vertex_cover,
    strong_color_arcs,
)
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    erdos_renyi_avg_degree,
    grid_graph,
    random_regular,
    scale_free,
    small_world,
    star_graph,
    unit_disk,
)
from repro.graphs.properties import max_degree
from repro.verify import (
    assert_matching,
    assert_proper_edge_coloring,
    assert_strong_arc_coloring,
)

FAMILIES = [
    ("er", lambda s: erdos_renyi_avg_degree(48, 6.0, seed=s)),
    ("scale-free", lambda s: scale_free(48, 2, power=1.2, seed=s)),
    ("small-world", lambda s: small_world(36, 6, 0.3, seed=s)),
    ("regular", lambda s: random_regular(30, 5, seed=s)),
    ("udg", lambda s: unit_disk(40, 0.25, seed=s)),
    ("grid", lambda s: grid_graph(6, 6)),
    ("star", lambda s: star_graph(14)),
    ("complete", lambda s: complete_graph(9)),
    ("bipartite", lambda s: complete_bipartite_graph(5, 7)),
]


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
class TestAllFamilies:
    def test_edge_coloring(self, name, make):
        g = make(11)
        result = color_edges(g, seed=11)
        assert_proper_edge_coloring(g, result.colors)
        delta = max_degree(g)
        assert result.num_colors <= max(1, 2 * delta - 1)

    def test_matching(self, name, make):
        g = make(12)
        result = find_maximal_matching(g, seed=12)
        assert_matching(g, result.edges, maximal=True)

    def test_vertex_cover(self, name, make):
        g = make(13)
        result = find_vertex_cover(g, seed=13)
        assert all(u in result.cover or v in result.cover for u, v in g.edges())


SMALL_FAMILIES = [
    ("er", lambda s: erdos_renyi_avg_degree(24, 4.0, seed=s)),
    ("small-world", lambda s: small_world(20, 4, 0.3, seed=s)),
    ("grid", lambda s: grid_graph(4, 5)),
    ("star", lambda s: star_graph(8)),
]


@pytest.mark.parametrize(
    "name,make", SMALL_FAMILIES, ids=[f[0] for f in SMALL_FAMILIES]
)
class TestStrongColoringFamilies:
    def test_dima2ed(self, name, make):
        g = make(21)
        d = g.to_directed()
        result = strong_color_arcs(d, seed=21)
        assert_strong_arc_coloring(d, result.colors)
        assert len(result.colors) == d.num_arcs


class TestQualityIntegration:
    """Distributed vs sequential quality on shared instances."""

    @pytest.mark.parametrize("seed", range(5))
    def test_alg1_never_wildly_worse_than_greedy(self, seed):
        from repro.baselines import greedy_edge_coloring

        g = erdos_renyi_avg_degree(60, 8.0, seed=seed)
        ours = color_edges(g, seed=seed).num_colors
        greedy = len(set(greedy_edge_coloring(g).values()))
        assert ours <= greedy + 3

    @pytest.mark.parametrize("seed", range(3))
    def test_dima2ed_vs_greedy_strong(self, seed):
        from repro.baselines import greedy_strong_arc_coloring

        d = erdos_renyi_avg_degree(30, 4.0, seed=seed).to_directed()
        ours = strong_color_arcs(d, seed=seed).num_colors
        greedy = len(set(greedy_strong_arc_coloring(d).values()))
        assert ours <= 2 * greedy + 4


class TestConjecture2Shape:
    """Conjecture 2: colors ≤ Δ+1 typically, ≤ Δ+2 in practice (ER)."""

    def test_typical_color_counts(self):
        excesses = []
        for seed in range(20):
            g = erdos_renyi_avg_degree(40, 8.0, seed=seed)
            r = color_edges(g, seed=seed)
            excesses.append(r.num_colors - r.delta)
        assert max(excesses) <= 2
        typical = sum(1 for e in excesses if e <= 1)
        assert typical >= 18  # ≥ 90% within Δ+1

    def test_scale_free_uses_at_most_delta(self):
        # Experiment IV-B's standout claim.
        for seed in range(10):
            g = scale_free(60, 2, power=1.0, seed=seed)
            r = color_edges(g, seed=seed)
            assert r.num_colors <= r.delta
