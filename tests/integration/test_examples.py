"""The shipped examples must run clean end-to-end (they are docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "5")
        assert "coloring:" in out
        assert "rounds:" in out

    def test_sensor_tdma(self):
        out = run_example("sensor_tdma_schedule.py", "3")
        assert "superframe" in out
        assert "no collisions" in out

    def test_wireless_channels(self):
        out = run_example("wireless_channel_assignment.py", "11")
        assert "channels" in out
        assert "clean" in out

    def test_runtime_tour(self):
        out = run_example("runtime_tour.py")
        assert "eccentricity = 10" in out
        assert "identical: True" in out

    def test_weighted_link_activation(self):
        out = run_example("weighted_link_activation.py", "21")
        assert "approximation ratio" in out
        assert "guaranteed ≥ 0.50" in out

    def test_experiment_pipeline(self):
        out = run_example("experiment_pipeline.py", "0.04")
        assert "indistinguishable" in out
        assert "persisted" in out
