"""End-to-end tests of the differential correctness harness.

The headline scenario is mutation testing: deliberately break the
batched kernel's color picker, then require the whole pipeline to work —
the fuzz loop finds the divergence, the delta-debugging shrinker
minimizes the instance to a handful of vertices, the counterexample
round-trips through JSON, and replaying it reproduces the divergence
under the bug and agreement once the bug is gone.
"""

import json

import pytest

import repro.core.batched as batched
from repro.graphs.adjacency import Graph
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi_avg_degree,
    path_graph,
)
from repro.verify.differential import TIERS, diff_tiers, run_tier
from repro.verify.fuzz import Counterexample, fuzz, load_counterexample, replay
from repro.verify.shrink import shrink_graph


@pytest.fixture
def broken_batched_palette(monkeypatch):
    """Off-by-one in the batched kernel's color pick, once ≥2 colors are
    taken — invisible on tiny first rounds, divergent soon after."""
    orig = batched.lowest_free_bit

    def buggy(mask):
        color = orig(mask)
        return color + 1 if bin(mask).count("1") >= 2 else color

    monkeypatch.setattr(batched, "lowest_free_bit", buggy)
    return buggy


class TestTiersAgree:
    @pytest.mark.parametrize("algorithm", ["alg1", "dima2ed"])
    def test_all_tiers_agree(self, algorithm):
        g = erdos_renyi_avg_degree(22, 4.0, seed=13)
        report = diff_tiers(g, algorithm=algorithm, seed=7)
        assert report.ok, report.summary()
        ran = set(report.runs) | set(report.skipped)
        assert ran == set(TIERS)

    def test_non_contiguous_labels(self):
        g = Graph([(10, 20), (20, 31), (31, 10), (31, 47)])
        report = diff_tiers(g, algorithm="alg1", seed=5)
        assert report.ok, report.summary()
        assert all((10, 20) in run.colors for run in report.runs.values())

    def test_single_tier_runs_standalone(self):
        g = path_graph(6)
        run = run_tier("batched", g, algorithm="alg1", seed=1)
        assert run.tier == "batched"
        assert len(run.colors) == 5


class TestInjectedKernelBugIsCaught:
    """The ISSUE's acceptance scenario, end to end."""

    def test_fuzz_catches_shrinks_and_replays(
        self, broken_batched_palette, tmp_path, monkeypatch
    ):
        result = fuzz(
            max_iterations=25,
            seed=2,
            algorithms=("alg1",),
            out=tmp_path,
            shrink_tests=300,
        )
        assert not result.ok, "fuzz failed to catch the injected kernel bug"
        ce = result.counterexample
        # Shrunk to a trivially inspectable instance.
        assert ce.graph().num_nodes <= 10
        assert ce.graph().num_edges <= 10
        assert result.saved_to is not None and result.saved_to.is_file()
        # The divergence names the batched tier against the baseline.
        assert any(d.tier == "batched" for d in result.report.divergences)

        # Replay under the bug still diverges...
        replay_report = replay(result.saved_to)
        assert not replay_report.ok

        # ...and agrees once the kernel is fixed.
        monkeypatch.undo()
        fixed_report = replay(result.saved_to)
        assert fixed_report.ok, fixed_report.summary()

    def test_divergence_is_deterministic(self, broken_batched_palette):
        # A triangle forces three distinct colors, tripping the off-by-one.
        g = complete_graph(3)
        first = diff_tiers(g, algorithm="alg1", seed=3, tiers=["general", "batched"])
        second = diff_tiers(g, algorithm="alg1", seed=3, tiers=["general", "batched"])
        assert not first.ok
        assert [str(d) for d in first.divergences] == [
            str(d) for d in second.divergences
        ]

    def test_crashing_tier_is_reported_not_raised(self, monkeypatch):
        def boom(mask):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(batched, "lowest_free_bit", boom)
        report = diff_tiers(
            complete_graph(4), algorithm="alg1", seed=1, tiers=["general", "batched"]
        )
        assert not report.ok
        assert "RuntimeError" in report.errors["batched"]
        assert "general" in report.runs


class TestShrinker:
    def test_shrinks_to_minimal_triangle(self):
        # Failure = "contains a triangle"; ddmin must land on exactly one.
        g = erdos_renyi_avg_degree(24, 5.0, seed=11)

        def has_triangle(h):
            for u in h.nodes():
                nbrs = sorted(h.neighbors(u))
                for i, v in enumerate(nbrs):
                    if any(h.has_edge(v, w) for w in nbrs[i + 1 :]):
                        return True
            return False

        assert has_triangle(g)
        result = shrink_graph(g, has_triangle)
        assert result.graph.num_nodes == 3
        assert result.graph.num_edges == 3
        assert result.tests > 1
        assert result.history, "accepted reductions must be recorded"

    def test_passing_input_returned_unchanged(self):
        g = path_graph(5)
        result = shrink_graph(g, lambda h: False)
        assert result.graph.edge_list() == g.edge_list()
        assert result.tests == 1

    def test_budget_is_respected(self):
        g = erdos_renyi_avg_degree(30, 6.0, seed=9)
        result = shrink_graph(g, lambda h: h.num_edges > 0, max_tests=10)
        assert result.tests <= 11  # initial check + budget


class TestCounterexampleFormat:
    def test_json_roundtrip(self, tmp_path):
        ce = Counterexample(
            algorithm="alg1",
            seed=42,
            tiers=["general", "batched"],
            edges=[(0, 1), (1, 2)],
            family="structured",
            summary="demo",
            original_nodes=20,
            original_edges=40,
        )
        path = ce.save(tmp_path / "ce.json")
        loaded = load_counterexample(path)
        assert loaded == ce
        assert loaded.graph().num_edges == 2

    def test_newer_format_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {
                    "format": 99,
                    "algorithm": "alg1",
                    "seed": 1,
                    "tiers": [],
                    "edges": [],
                }
            )
        )
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            load_counterexample(path)

    def test_replayable_clean_config_agrees(self, tmp_path):
        ce = Counterexample(
            algorithm="dima2ed",
            seed=8,
            tiers=list(TIERS),
            edges=[(0, 1), (1, 2), (2, 0)],
        )
        path = ce.save(tmp_path / "clean.json")
        assert replay(path).ok


class TestFuzzLoop:
    def test_clean_campaign_covers_families(self):
        result = fuzz(max_iterations=6, seed=4)
        assert result.ok
        assert result.iterations == 6
        assert len(result.per_family) >= 4

    def test_iteration_budget(self):
        result = fuzz(max_iterations=2, seed=1)
        assert result.iterations == 2

    def test_requires_some_budget(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fuzz()
