"""Determinism and reproducibility guarantees across the stack."""

import pytest

from repro import color_edges, find_maximal_matching, strong_color_arcs
from repro.experiments import fig3_erdos_renyi
from repro.graphs.generators import erdos_renyi_avg_degree, small_world


class TestAlgorithmDeterminism:
    def test_edge_coloring_full_result_identical(self):
        g = erdos_renyi_avg_degree(50, 6.0, seed=8)
        a = color_edges(g, seed=99)
        b = color_edges(g, seed=99)
        assert a.colors == b.colors
        assert a.rounds == b.rounds
        assert a.metrics.messages_sent == b.metrics.messages_sent
        assert a.metrics.words_delivered == b.metrics.words_delivered

    def test_strong_coloring_identical(self):
        d = erdos_renyi_avg_degree(25, 4.0, seed=8).to_directed()
        a = strong_color_arcs(d, seed=5)
        b = strong_color_arcs(d, seed=5)
        assert a.colors == b.colors and a.supersteps == b.supersteps

    def test_matching_identical(self):
        g = small_world(30, 4, 0.3, seed=2)
        assert (
            find_maximal_matching(g, seed=1).edges
            == find_maximal_matching(g, seed=1).edges
        )

    def test_graph_seed_and_algo_seed_independent(self):
        g = erdos_renyi_avg_degree(40, 5.0, seed=3)
        runs = {color_edges(g, seed=s).rounds for s in range(6)}
        assert len(runs) > 1  # algo seed matters given a fixed graph


class TestExperimentDeterminism:
    def test_report_reproducible(self):
        a = fig3_erdos_renyi.run(scale=0.02, base_seed=55)
        b = fig3_erdos_renyi.run(scale=0.02, base_seed=55)
        assert a.records == b.records

    def test_scaling_is_prefix_stable(self):
        # Growing the replicate count must not change earlier replicates:
        # replicate i is seeded independently of the total count.
        small = fig3_erdos_renyi.run(scale=0.02, base_seed=7)  # 1/cell
        large = fig3_erdos_renyi.run(scale=0.04, base_seed=7)  # 2/cell
        small_keys = {(r.cell, r.replicate): r for r in small.records}
        large_keys = {(r.cell, r.replicate): r for r in large.records}
        for key, record in small_keys.items():
            assert large_keys[key] == record
