"""The α-synchronizer must make the paper's algorithms asynchrony-proof.

The paper assumes synchronized rounds; these tests discharge the
assumption end-to-end: Algorithm 1, DiMa2Ed, matching, and the weighted
matching extension run unmodified over the asynchronous engine and
produce **bit-identical** results to the synchronous engine, for every
delay regime.
"""

import pytest

from repro.core.dima2ed import DiMa2EdProgram
from repro.core.edge_coloring import EdgeColoringProgram, _collect_edge_colors
from repro.core.matching import MatchingProgram
from repro.graphs.generators import erdos_renyi_avg_degree, small_world
from repro.runtime.async_engine import AsyncEngine
from repro.runtime.engine import SynchronousEngine
from repro.verify import assert_proper_edge_coloring, assert_strong_arc_coloring


class TestAlgorithm1Async:
    @pytest.mark.parametrize("max_delay", [1, 5])
    def test_identical_coloring(self, max_delay):
        g = erdos_renyi_avg_degree(36, 5.0, seed=31)
        factory = lambda u: EdgeColoringProgram(u)  # noqa: E731
        seq = SynchronousEngine(g, factory, seed=31).run()
        asy = AsyncEngine(g, factory, seed=31, max_delay=max_delay).run()
        assert asy.completed
        identity = {u: u for u in range(g.num_nodes)}
        seq_colors = _collect_edge_colors(seq, identity, True)
        asy_colors = _collect_edge_colors(asy, identity, True)
        assert seq_colors == asy_colors
        assert asy.pulses == seq.supersteps
        assert asy.metrics.messages_sent == seq.metrics.messages_sent
        assert_proper_edge_coloring(g, asy_colors)


class TestDiMa2EdAsync:
    def test_identical_strong_coloring(self):
        g = small_world(18, 4, 0.3, seed=41)
        d = g.to_directed()

        def factory(u):
            return DiMa2EdProgram(
                u,
                out_neighbors=list(d.successors(u)),
                in_neighbors=list(d.predecessors(u)),
            )

        seq = SynchronousEngine(g, factory, seed=41).run()
        asy = AsyncEngine(g, factory, seed=41, max_delay=4).run()
        assert asy.completed
        seq_arcs = {}
        asy_arcs = {}
        for sp, ap in zip(seq.programs, asy.programs):
            seq_arcs.update(sp.arc_colors)
            asy_arcs.update(ap.arc_colors)
        assert seq_arcs == asy_arcs
        assert_strong_arc_coloring(d, asy_arcs)


class TestMatchingAsync:
    def test_identical_matching(self):
        g = erdos_renyi_avg_degree(30, 4.0, seed=51)
        factory = lambda u: MatchingProgram(u)  # noqa: E731
        seq = SynchronousEngine(g, factory, seed=51).run()
        asy = AsyncEngine(g, factory, seed=51, max_delay=6).run()
        assert [p.matched_with for p in asy.programs] == [
            p.matched_with for p in seq.programs
        ]
