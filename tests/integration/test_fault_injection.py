"""Behavior under message loss and crashes: where the paper's
assumptions matter, and how the hardened configurations restore them.

Proposition 2's correctness argument explicitly assumes reliable
delivery.  These tests demonstrate (a) the reliable configuration is
clean, (b) loss slows but rarely corrupts low-rate runs, (c) the
defensive listener check contains the damage loss can cause, and —
the strong claims — (d) recovery mode plus the reliable transport make
lossy runs terminate with proper, **complete** colorings, and (e) with
crash-stop faults the survivors still finish and their coloring passes
the surviving-subgraph verifiers.
"""

import pytest

from repro.core.dima2ed import StrongColoringParams, strong_color_arcs
from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.errors import ConvergenceError
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi_avg_degree,
    scale_free,
    small_world,
)
from repro.runtime.faults import CrashNodes, DropLinks, DropRandomMessages
from repro.verify import (
    assert_partial_edge_coloring,
    assert_partial_strong_coloring,
    check_edge_coloring_complete,
    check_proper_edge_coloring,
    check_strong_arc_coloring,
)


def topologies():
    """The three experiment families at a size quick enough for CI."""
    return [
        ("er", erdos_renyi_avg_degree(28, 4.0, seed=11)),
        ("scale_free", scale_free(28, 2, seed=12)),
        ("small_world", small_world(28, 4, 0.2, seed=13)),
    ]


class TestReliableBaseline:
    def test_zero_loss_filter_equals_no_filter(self):
        g = erdos_renyi_avg_degree(30, 4.0, seed=1)
        plain = color_edges(g, seed=5)
        filtered = color_edges(g, seed=5, faults=DropRandomMessages(0.0, seed=1))
        assert plain.colors == filtered.colors


class TestLossyRuns:
    @pytest.mark.parametrize("rate", [0.01, 0.03])
    def test_low_loss_usually_terminates_properly(self, rate):
        g = erdos_renyi_avg_degree(30, 4.0, seed=2)
        completed = 0
        proper = 0
        for seed in range(6):
            try:
                result = color_edges(
                    g,
                    seed=seed,
                    params=EdgeColoringParams(defensive=True, max_rounds=3000),
                    faults=DropRandomMessages(rate, seed=seed),
                    check_consistency=False,
                )
            except ConvergenceError:
                continue
            completed += 1
            if not check_proper_edge_coloring(g, result.colors):
                proper += 1
        assert completed >= 4
        assert proper == completed  # defensive mode keeps colorings proper

    def test_loss_increases_rounds(self):
        g = erdos_renyi_avg_degree(40, 5.0, seed=3)
        clean = color_edges(g, seed=7).rounds
        lossy = color_edges(
            g,
            seed=7,
            params=EdgeColoringParams(defensive=True, max_rounds=5000),
            faults=DropRandomMessages(0.05, seed=7),
            check_consistency=False,
        ).rounds
        assert lossy >= clean

    def test_metrics_count_drops(self):
        g = erdos_renyi_avg_degree(30, 4.0, seed=4)
        result = color_edges(
            g,
            seed=8,
            params=EdgeColoringParams(defensive=True, max_rounds=5000),
            faults=DropRandomMessages(0.05, seed=8),
            check_consistency=False,
        )
        assert result.metrics.messages_dropped > 0


class TestSeveredLinks:
    def test_severed_exchange_can_cause_color_conflicts(self):
        # Cut every report from node 0 to node 1: node 1's knowledge of
        # 0's colors goes stale; without the defensive check this can
        # produce improper or inconsistent colorings — the exact failure
        # mode Proposition 2 excludes by assuming reliability.  We only
        # assert the run still terminates and the harness surfaces the
        # inconsistency rather than hiding it.
        g = erdos_renyi_avg_degree(20, 4.0, seed=5)
        outcomes = set()
        for seed in range(8):
            try:
                result = color_edges(
                    g,
                    seed=seed,
                    params=EdgeColoringParams(max_rounds=2000),
                    faults=DropLinks([(0, 1)]),
                    check_consistency=False,
                )
            except ConvergenceError:
                outcomes.add("stuck")
                continue
            bad = check_proper_edge_coloring(g, result.colors)
            bad += check_edge_coloring_complete(g, result.colors)
            outcomes.add("dirty" if bad else "clean")
        # The protocol must never crash; it may be clean, stuck, or dirty.
        assert outcomes <= {"clean", "stuck", "dirty"}
        assert outcomes  # at least one run executed


class TestHardenedLossyRuns:
    """Recovery + reliable transport: loss must not cost correctness.

    Unlike :class:`TestLossyRuns` above, "stuck" and "dirty" are **not**
    acceptable outcomes here — every run must terminate with a proper,
    complete coloring.
    """

    @pytest.mark.parametrize("name,graph", topologies(), ids=lambda x: x if isinstance(x, str) else "")
    @pytest.mark.parametrize("rate", [0.02, 0.05])
    def test_edge_coloring_clean_under_loss(self, name, graph, rate):
        result = color_edges(
            graph,
            seed=17,
            params=EdgeColoringParams(recovery=True, max_rounds=4000),
            faults=DropRandomMessages(rate, seed=17),
            transport=True,
        )
        assert check_proper_edge_coloring(graph, result.colors) == []
        assert check_edge_coloring_complete(graph, result.colors) == []
        assert result.metrics.retransmissions > 0

    @pytest.mark.parametrize("rate", [0.02, 0.05])
    def test_dima2ed_clean_under_loss(self, rate):
        digraph = erdos_renyi_avg_degree(24, 3.0, seed=14).to_directed()
        result = strong_color_arcs(
            digraph,
            seed=19,
            params=StrongColoringParams(recovery=True, max_rounds=4000),
            faults=DropRandomMessages(rate, seed=19),
            transport=True,
        )
        assert check_strong_arc_coloring(digraph, result.colors) == []

    def test_recovery_alone_contains_low_loss(self):
        # Without the transport, recovery's corrective replies +
        # persistent reservations still keep the coloring proper and
        # complete at low loss — the handshake heals endpoint desync.
        g = erdos_renyi_avg_degree(26, 4.0, seed=15)
        result = color_edges(
            g,
            seed=23,
            params=EdgeColoringParams(recovery=True, max_rounds=4000),
            faults=DropRandomMessages(0.03, seed=23),
        )
        assert check_proper_edge_coloring(g, result.colors) == []
        assert check_edge_coloring_complete(g, result.colors) == []

    def test_dima2ed_recovery_alone_terminates_consistent(self):
        # DiMa2Ed recovery without transport: termination and endpoint
        # consistency are guaranteed (check_consistency=True would
        # raise); strict strong-properness retains a small residual
        # conflict window, so it is asserted only with transport above.
        digraph = erdos_renyi_avg_degree(22, 3.0, seed=16).to_directed()
        result = strong_color_arcs(
            digraph,
            seed=29,
            params=StrongColoringParams(recovery=True, max_rounds=4000),
            faults=DropRandomMessages(0.03, seed=29),
        )
        assert len(result.colors) == digraph.num_arcs


class TestAsymmetricAbandonment:
    """Regression: a cycle of one-sided abandonments must not livelock.

    On K5 minus the (0,1) edge, severing the directed links 2→3, 3→4
    and 4→2 starves each target of its source's messages while every
    node stays live and heartbeating with its other partners — so no
    silence detector fires for the *abandoning* side's partner, and
    before the abandonment notice in recovery reports each victim
    re-invited its silent partner forever (pre-existing
    ``ConvergenceError``, noted in PR 2; seeds 3 and 5 reproduced it).
    """

    def test_k5_minus_edge_cyclic_severed_links_converges(self):
        g = complete_graph(5)
        g.remove_edge(0, 1)
        for seed in range(8):
            result = color_edges(
                g,
                seed=seed,
                params=EdgeColoringParams(recovery=True, max_rounds=300),
                faults=DropLinks([(2, 3), (3, 4), (4, 2)]),
                check_consistency=False,
            )
            # The three severed edges are abandoned (possibly after a
            # completed handshake on the intact direction); everything
            # recorded must still be proper.
            assert check_proper_edge_coloring(g, result.colors) == []
            assert len(result.colors) >= g.num_edges - 3

    def test_abandonment_notice_reaches_partner(self):
        # A single one-sided severed link: the starved side (3) abandons
        # after presume_dead_after rounds, and its heartbeat notice must
        # make 2 drop the edge too instead of re-inviting forever.
        g = complete_graph(4)
        result = color_edges(
            g,
            seed=2,
            params=EdgeColoringParams(
                recovery=True, presume_dead_after=5, max_rounds=300
            ),
            faults=DropLinks([(2, 3)]),
            check_consistency=False,
        )
        assert check_proper_edge_coloring(g, result.colors) == []


class TestCrashStopRuns:
    """Crash up to 10% of the nodes: survivors finish a valid coloring."""

    def test_edge_coloring_survivors_clean(self):
        g = erdos_renyi_avg_degree(30, 4.0, seed=21)
        faults = CrashNodes.random(30, 0.10, window=(4, 40), seed=31)
        result = color_edges(
            g,
            seed=37,
            params=EdgeColoringParams(recovery=True, max_rounds=4000),
            faults=faults,
            transport=True,
            check_consistency=False,
        )
        assert result.crashed
        assert len(result.crashed) <= 3
        assert_partial_edge_coloring(g, result.colors, result.crashed)

    def test_edge_coloring_silence_detector_without_transport(self):
        # No transport: the automaton's own silence detector must notice
        # the dead partners and the run must still finish clean on the
        # surviving subgraph.
        g = erdos_renyi_avg_degree(24, 3.5, seed=22)
        faults = CrashNodes.random(24, 0.10, window=(4, 40), seed=41)
        result = color_edges(
            g,
            seed=43,
            params=EdgeColoringParams(recovery=True, max_rounds=4000),
            faults=faults,
            check_consistency=False,
        )
        assert result.crashed
        assert_partial_edge_coloring(g, result.colors, result.crashed)

    def test_dima2ed_survivors_clean(self):
        digraph = erdos_renyi_avg_degree(24, 3.0, seed=23).to_directed()
        faults = CrashNodes.random(24, 0.10, window=(4, 40), seed=47)
        result = strong_color_arcs(
            digraph,
            seed=53,
            params=StrongColoringParams(recovery=True, max_rounds=4000),
            faults=faults,
            transport=True,
            check_consistency=False,
        )
        assert result.crashed
        assert_partial_strong_coloring(digraph, result.colors, result.crashed)

    def test_crash_metrics_recorded(self):
        g = erdos_renyi_avg_degree(24, 3.5, seed=24)
        result = color_edges(
            g,
            seed=59,
            params=EdgeColoringParams(recovery=True, max_rounds=4000),
            faults=CrashNodes({3: 8, 11: 16}),
            transport=True,
            check_consistency=False,
        )
        assert result.crashed == frozenset({3, 11})
        assert result.metrics.messages_lost_to_crash > 0
