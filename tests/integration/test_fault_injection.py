"""Behavior under message loss: where the paper's assumptions matter.

Proposition 2's correctness argument explicitly assumes reliable
delivery.  These tests demonstrate (a) the reliable configuration is
clean, (b) loss slows but rarely corrupts low-rate runs, and (c) the
defensive listener check contains the damage loss can cause.
"""

import pytest

from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.errors import ConvergenceError
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.runtime.faults import DropLinks, DropRandomMessages
from repro.verify import check_edge_coloring_complete, check_proper_edge_coloring


class TestReliableBaseline:
    def test_zero_loss_filter_equals_no_filter(self):
        g = erdos_renyi_avg_degree(30, 4.0, seed=1)
        plain = color_edges(g, seed=5)
        filtered = color_edges(g, seed=5, faults=DropRandomMessages(0.0, seed=1))
        assert plain.colors == filtered.colors


class TestLossyRuns:
    @pytest.mark.parametrize("rate", [0.01, 0.03])
    def test_low_loss_usually_terminates_properly(self, rate):
        g = erdos_renyi_avg_degree(30, 4.0, seed=2)
        completed = 0
        proper = 0
        for seed in range(6):
            try:
                result = color_edges(
                    g,
                    seed=seed,
                    params=EdgeColoringParams(defensive=True, max_rounds=3000),
                    faults=DropRandomMessages(rate, seed=seed),
                    check_consistency=False,
                )
            except ConvergenceError:
                continue
            completed += 1
            if not check_proper_edge_coloring(g, result.colors):
                proper += 1
        assert completed >= 4
        assert proper == completed  # defensive mode keeps colorings proper

    def test_loss_increases_rounds(self):
        g = erdos_renyi_avg_degree(40, 5.0, seed=3)
        clean = color_edges(g, seed=7).rounds
        lossy = color_edges(
            g,
            seed=7,
            params=EdgeColoringParams(defensive=True, max_rounds=5000),
            faults=DropRandomMessages(0.05, seed=7),
            check_consistency=False,
        ).rounds
        assert lossy >= clean

    def test_metrics_count_drops(self):
        g = erdos_renyi_avg_degree(30, 4.0, seed=4)
        result = color_edges(
            g,
            seed=8,
            params=EdgeColoringParams(defensive=True, max_rounds=5000),
            faults=DropRandomMessages(0.05, seed=8),
            check_consistency=False,
        )
        assert result.metrics.messages_dropped > 0


class TestSeveredLinks:
    def test_severed_exchange_can_cause_color_conflicts(self):
        # Cut every report from node 0 to node 1: node 1's knowledge of
        # 0's colors goes stale; without the defensive check this can
        # produce improper or inconsistent colorings — the exact failure
        # mode Proposition 2 excludes by assuming reliability.  We only
        # assert the run still terminates and the harness surfaces the
        # inconsistency rather than hiding it.
        g = erdos_renyi_avg_degree(20, 4.0, seed=5)
        outcomes = set()
        for seed in range(8):
            try:
                result = color_edges(
                    g,
                    seed=seed,
                    params=EdgeColoringParams(max_rounds=2000),
                    faults=DropLinks([(0, 1)]),
                    check_consistency=False,
                )
            except ConvergenceError:
                outcomes.add("stuck")
                continue
            bad = check_proper_edge_coloring(g, result.colors)
            bad += check_edge_coloring_complete(g, result.colors)
            outcomes.add("dirty" if bad else "clean")
        # The protocol must never crash; it may be clean, stuck, or dirty.
        assert outcomes <= {"clean", "stuck", "dirty"}
        assert outcomes  # at least one run executed
