"""Cross-validation of our substrates against networkx.

networkx is used here purely as an independent implementation to check
ours against — the library itself never depends on it at runtime.
"""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.convert import to_networkx
from repro.graphs.generators import (
    erdos_renyi_gnp,
    random_regular,
    scale_free,
    small_world,
)
from repro.graphs.linegraph import line_graph
from repro.graphs.properties import connected_components, is_connected, max_degree


class TestStructuralAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_components_match(self, seed):
        g = erdos_renyi_gnp(60, 0.03, seed=seed)
        nxg = to_networkx(g)
        ours = sorted(sorted(c) for c in connected_components(g))
        theirs = sorted(sorted(c) for c in nx.connected_components(nxg))
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(4))
    def test_connectivity_matches(self, seed):
        g = small_world(40, 6, 0.4, seed=seed)
        assert is_connected(g) == nx.is_connected(to_networkx(g))

    def test_max_degree_matches(self):
        g = scale_free(80, 2, seed=5)
        nxg = to_networkx(g)
        assert max_degree(g) == max(d for _, d in nxg.degree())

    @pytest.mark.parametrize("seed", range(3))
    def test_line_graph_isomorphic_structure(self, seed):
        g = erdos_renyi_gnp(15, 0.25, seed=seed)
        ours, index = line_graph(g)
        theirs = nx.line_graph(to_networkx(g))
        assert ours.num_nodes == theirs.number_of_nodes()
        assert ours.num_edges == theirs.number_of_edges()
        # node-level check through the index mapping
        for i in range(ours.num_nodes):
            assert ours.degree(i) == theirs.degree[index[i]]


class TestDistributionalAgreement:
    """Our generators should match networkx's distributions, not samples."""

    def test_gnp_edge_count_distribution(self):
        n, p, trials = 60, 0.1, 40
        ours = [erdos_renyi_gnp(n, p, seed=s).num_edges for s in range(trials)]
        theirs = [
            nx.fast_gnp_random_graph(n, p, seed=s).number_of_edges()
            for s in range(trials)
        ]
        assert abs(np.mean(ours) - np.mean(theirs)) < 0.15 * np.mean(theirs)

    def test_ws_degree_distribution(self):
        ours = small_world(100, 6, 0.3, seed=1)
        theirs = nx.watts_strogatz_graph(100, 6, 0.3, seed=1)
        assert ours.num_edges == theirs.number_of_edges()
        our_mean_deg = 2 * ours.num_edges / 100
        assert our_mean_deg == pytest.approx(6.0)

    def test_regular_matches_definition(self):
        # networkx would reject the same infeasible inputs we do.
        g = random_regular(20, 6, seed=2)
        h = nx.random_regular_graph(6, 20, seed=2)
        assert sorted(d for _, d in h.degree()) == [6] * 20
        assert all(g.degree(u) == 6 for u in g)

    def test_ba_mean_degree_close_to_networkx(self):
        ours = [
            2 * scale_free(100, 2, seed=s).num_edges / 100 for s in range(10)
        ]
        theirs = [
            2 * nx.barabasi_albert_graph(100, 2, seed=s).number_of_edges() / 100
            for s in range(10)
        ]
        assert abs(np.mean(ours) - np.mean(theirs)) < 0.3


class TestColoringCrossCheck:
    def test_our_coloring_valid_under_networkx_adjacency(self):
        # Validate Algorithm 1's output using networkx's line graph as
        # the adjacency oracle (yet another independent checker).
        from repro import color_edges

        g = erdos_renyi_gnp(30, 0.15, seed=9)
        result = color_edges(g, seed=9)
        lg = nx.line_graph(to_networkx(g))
        for e1, e2 in lg.edges():
            k1 = tuple(sorted(e1))
            k2 = tuple(sorted(e2))
            assert result.colors[k1] != result.colors[k2]
