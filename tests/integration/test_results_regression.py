"""The committed results/ records must match what the code produces today.

Replicate seeding is prefix-stable (replicate *i* of a cell is seeded
independently of the replicate count), so a small fresh run must agree
**record-for-record** with the corresponding prefix of the committed
full-scale evaluation.  If this test fails, the algorithms' behavior
changed: rerun ``python tools/run_full_evaluation.py`` and refresh
EXPERIMENTS.md in the same change.
"""

import pathlib

import pytest

from repro.experiments import fig3_erdos_renyi, fig6_dima2ed
from repro.experiments.persistence import load_report

RESULTS = pathlib.Path(__file__).resolve().parents[2] / "results"

needs_results = pytest.mark.skipif(
    not RESULTS.exists(), reason="results/ not present (fresh checkout without evaluation)"
)


@needs_results
class TestCommittedResults:
    def test_fig3_prefix_matches(self):
        committed = load_report(RESULTS / "fig3_erdos_renyi.json")
        fresh = fig3_erdos_renyi.run(scale=0.04, base_seed=2012)
        stored = {(r.cell, r.replicate): r for r in committed.records}
        for record in fresh.records:
            assert stored[(record.cell, record.replicate)] == record

    def test_fig6_prefix_matches(self):
        committed = load_report(RESULTS / "fig6_dima2ed.json")
        fresh = fig6_dima2ed.run(scale=0.02, base_seed=2012)
        stored = {(r.cell, r.replicate): r for r in committed.records}
        for record in fresh.records:
            assert stored[(record.cell, record.replicate)] == record

    def test_committed_scale_is_paper_scale(self):
        committed = load_report(RESULTS / "fig3_erdos_renyi.json")
        assert len(committed.records) == 300  # 6 cells x 50 graphs

    def test_committed_headlines(self):
        committed = load_report(RESULTS / "fig3_erdos_renyi.json")
        fit = committed.rounds_fit()
        assert 1.8 < fit.slope < 2.1  # the paper's "around 2Δ"
        assert max(r.excess_colors for r in committed.records) <= 2
