"""The multiprocessing executor must reproduce sequential runs bit-for-bit.

This is the package's strongest internal consistency check: the coloring
programs contain shared-nothing per-node state and placement-invariant
RNG streams, so running them across OS processes must not change a
single color, round count, or message count.
"""

import multiprocessing as mp

import pytest

from repro.core.edge_coloring import EdgeColoringProgram, _collect_edge_colors
from repro.core.matching import MatchingProgram
from repro.graphs.generators import erdos_renyi_avg_degree, grid_graph
from repro.runtime.engine import SynchronousEngine
from repro.runtime.parallel import ParallelEngine
from repro.verify import assert_proper_edge_coloring

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="fork start method unavailable"
)


def coloring_factory(u):
    return EdgeColoringProgram(u)


def matching_factory(u):
    return MatchingProgram(u)


@needs_fork
class TestEdgeColoringParallel:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_identical_coloring(self, workers):
        g = erdos_renyi_avg_degree(40, 5.0, seed=17)
        seq = SynchronousEngine(g, coloring_factory, seed=17).run()
        par = ParallelEngine(g, coloring_factory, seed=17, workers=workers).run()
        assert par.completed and seq.completed
        identity = {u: u for u in range(g.num_nodes)}
        seq_colors = _collect_edge_colors(seq, identity, True)
        par_colors = _collect_edge_colors(par, identity, True)
        assert seq_colors == par_colors
        assert par.supersteps == seq.supersteps
        assert par.metrics.messages_sent == seq.metrics.messages_sent

    def test_parallel_coloring_verifies(self):
        g = grid_graph(5, 5)
        par = ParallelEngine(g, coloring_factory, seed=3, workers=3).run()
        identity = {u: u for u in range(g.num_nodes)}
        colors = _collect_edge_colors(par, identity, True)
        assert_proper_edge_coloring(g, colors)


@needs_fork
class TestMatchingParallel:
    def test_identical_matching(self):
        g = erdos_renyi_avg_degree(30, 4.0, seed=23)
        seq = SynchronousEngine(g, matching_factory, seed=23).run()
        par = ParallelEngine(g, matching_factory, seed=23, workers=3).run()
        seq_partners = [p.matched_with for p in seq.programs]
        par_partners = [p.matched_with for p in par.programs]
        assert seq_partners == par_partners
