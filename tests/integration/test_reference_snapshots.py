"""Frozen-output regression tests.

Every run is a pure function of (graph, seed); these tests pin exact
outputs for fixed inputs, so any refactor that silently changes RNG
consumption order, phase structure, or message routing trips a test
instead of quietly shifting every published number.

If a change is *intentional* (e.g. a new RNG draw in the hot path),
update the constants here and note it in EXPERIMENTS.md — the recorded
evaluation numbers change with them.
"""

from repro import (
    color_edges,
    color_vertices,
    find_maximal_matching,
    strong_color_arcs,
)
from repro.graphs.generators import erdos_renyi_avg_degree, small_world


def reference_graph():
    return erdos_renyi_avg_degree(50, 6.0, seed=123)


class TestGeneratorSnapshot:
    def test_er_graph_shape(self):
        g = reference_graph()
        assert g.num_nodes == 50
        assert g.num_edges == 165

    def test_small_world_shape(self):
        g = small_world(20, 4, 0.3, seed=77)
        assert g.num_edges == 40


class TestAlgorithm1Snapshot:
    def test_full_result(self):
        result = color_edges(reference_graph(), seed=456)
        assert result.rounds == 25
        assert result.num_colors == 13
        assert result.metrics.messages_sent == 888
        assert result.colors[(0, 6)] == 4
        assert result.colors[(0, 8)] == 0
        assert result.colors[(0, 14)] == 2


class TestMatchingSnapshot:
    def test_full_result(self):
        result = find_maximal_matching(reference_graph(), seed=456)
        assert result.size == 23
        assert result.rounds == 6
        assert (0, 8) in result.edges
        assert (1, 25) in result.edges


class TestDiMa2EdSnapshot:
    def test_full_result(self):
        d = small_world(20, 4, 0.3, seed=77).to_directed()
        result = strong_color_arcs(d, seed=88)
        assert result.rounds == 32
        assert result.num_colors == 37
        assert result.colors[(0, 1)] == 5
        assert result.colors[(0, 2)] == 4


class TestVertexColoringSnapshot:
    def test_full_result(self):
        result = color_vertices(reference_graph(), seed=456)
        assert result.rounds == 8
        assert result.num_colors == 14
        assert result.colors[0] == 7
        assert result.colors[1] == 4
