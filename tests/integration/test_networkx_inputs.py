"""The public entry points accept networkx graphs directly."""

import networkx as nx
import pytest

from repro import (
    color_edges,
    color_vertices,
    find_maximal_matching,
    find_weighted_matching,
    strong_color_arcs,
)
from repro.errors import GraphError
from repro.graphs.adjacency import Graph
from repro.graphs.convert import from_networkx
from repro.verify import (
    assert_matching,
    assert_proper_edge_coloring,
    assert_strong_arc_coloring,
)


@pytest.fixture
def nx_graph():
    return nx.random_regular_graph(4, 20, seed=5)


class TestNetworkxInputs:
    def test_color_edges(self, nx_graph):
        result = color_edges(nx_graph, seed=1)
        assert_proper_edge_coloring(from_networkx(nx_graph), result.colors)

    def test_matching(self, nx_graph):
        result = find_maximal_matching(nx_graph, seed=2)
        assert_matching(from_networkx(nx_graph), result.edges)

    def test_vertex_coloring(self, nx_graph):
        result = color_vertices(nx_graph, seed=3)
        for u, v in nx_graph.edges():
            assert result.colors[u] != result.colors[v]

    def test_weighted_matching(self, nx_graph):
        weights = {tuple(sorted(e)): 1.0 for e in nx_graph.edges()}
        result = find_weighted_matching(nx_graph, weights)
        assert result.size >= 1

    def test_strong_coloring_from_nx_digraph(self):
        nxd = nx.cycle_graph(6).to_directed()  # symmetric closure
        result = strong_color_arcs(nxd, seed=4)
        assert_strong_arc_coloring(from_networkx(nxd), result.colors)

    def test_identical_to_converted_input(self, nx_graph):
        direct = color_edges(nx_graph, seed=9)
        converted = color_edges(from_networkx(nx_graph), seed=9)
        assert direct.colors == converted.colors


class TestCoercionErrors:
    def test_digraph_to_edge_coloring_rejected(self):
        with pytest.raises(GraphError):
            color_edges(Graph([(0, 1)]).to_directed(), seed=1)

    def test_graph_to_strong_coloring_rejected(self):
        with pytest.raises(GraphError):
            strong_color_arcs(Graph([(0, 1)]), seed=1)

    def test_nx_digraph_to_edge_coloring_rejected(self):
        with pytest.raises(GraphError):
            color_edges(nx.DiGraph([(0, 1)]), seed=1)

    def test_garbage_rejected(self):
        with pytest.raises(GraphError):
            color_edges([1, 2, 3], seed=1)

    def test_string_labels_rejected(self):
        with pytest.raises(GraphError):
            color_edges(nx.Graph([("a", "b")]), seed=1)
