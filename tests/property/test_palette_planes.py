"""Property tests: fixed-width palette planes vs the bigint palette ops.

The vectorized kernels (repro.core.vectorized) keep the consumed-color
masks of the whole population as a ``uint64[n, k]`` plane array, and
every palette query the kernels make has a bigint counterpart that the
batched core uses.  These tests pin the plane operations against those
bigint forms word for word, with color indices spanning up to four plane
words so every cross-word carry/boundary path is exercised.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.palette import (
    PLANE_WORD_BITS,
    colors_of,
    grow_planes,
    lowest_free_bit,
    mask_of,
    masks_of_planes,
    plane_words,
    planes_bit_length,
    planes_lowest_free,
    planes_of_masks,
    planes_popcount,
    planes_select_free,
)

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Up to 4 plane words: colors 0..255, including the exact word
# boundaries 63/64/127/128/191/192/255.
color_sets = st.sets(st.integers(min_value=0, max_value=255), max_size=40)
mask_lists = st.lists(
    color_sets.map(mask_of), min_size=1, max_size=12
)


class TestRoundTrip:
    @RELAXED
    @given(masks=mask_lists)
    def test_masks_planes_masks(self, masks):
        planes = planes_of_masks(masks)
        assert planes.dtype == np.uint64
        assert masks_of_planes(planes) == masks

    @RELAXED
    @given(masks=mask_lists, extra=st.integers(min_value=0, max_value=3))
    def test_explicit_width_is_respected(self, masks, extra):
        need = max(plane_words(m.bit_length()) for m in masks)
        planes = planes_of_masks(masks, words=need + extra)
        assert planes.shape[1] == need + extra
        assert masks_of_planes(planes) == masks

    @RELAXED
    @given(masks=mask_lists, words=st.integers(min_value=1, max_value=8))
    def test_grow_preserves_masks(self, masks, words):
        planes = planes_of_masks(masks)
        wide = grow_planes(planes, words)
        assert wide.shape[1] >= max(planes.shape[1], words)
        assert masks_of_planes(wide) == masks


class TestRowQueries:
    @RELAXED
    @given(masks=mask_lists)
    def test_lowest_free_matches_bigint(self, masks):
        planes = planes_of_masks(masks)
        got = planes_lowest_free(planes)
        k = planes.shape[1]
        for row, mask in zip(got.tolist(), masks):
            want = lowest_free_bit(mask)
            if want >= k * PLANE_WORD_BITS:
                # Saturated row: the sentinel tells the caller to grow.
                assert row == k * PLANE_WORD_BITS
            else:
                assert row == want

    def test_saturated_row_sentinel(self):
        full = mask_of(range(2 * PLANE_WORD_BITS))
        planes = planes_of_masks([full])
        assert planes_lowest_free(planes).tolist() == [2 * PLANE_WORD_BITS]

    @RELAXED
    @given(masks=mask_lists)
    def test_popcount_matches_bigint(self, masks):
        planes = planes_of_masks(masks)
        want = [bin(m).count("1") for m in masks]
        assert planes_popcount(planes).tolist() == want

    @RELAXED
    @given(masks=mask_lists, words=st.integers(min_value=1, max_value=6))
    def test_bit_length_matches_bigint(self, masks, words):
        planes = grow_planes(planes_of_masks(masks), words)
        want = [m.bit_length() for m in masks]
        assert planes_bit_length(planes).tolist() == want


class TestSelectFree:
    @RELAXED
    @given(
        masks=mask_lists,
        data=st.data(),
    )
    def test_matches_candidate_list(self, masks, data):
        planes = planes_of_masks(masks)
        k = planes.shape[1]
        ranks = np.array(
            [
                data.draw(st.integers(min_value=0, max_value=80), label=f"rank{i}")
                for i in range(len(masks))
            ],
            dtype=np.int64,
        )
        got = planes_select_free(planes, ranks)
        for row, mask, r in zip(got.tolist(), masks, ranks.tolist()):
            free = [c for c in range(k * PLANE_WORD_BITS) if not mask >> c & 1]
            if r < len(free):
                assert row == free[r]
            else:
                # Rank beyond the planes' free bits: sentinel, caller grows.
                assert row == k * PLANE_WORD_BITS

    @RELAXED
    @given(masks=mask_lists)
    def test_rank_zero_is_lowest_free(self, masks):
        planes = planes_of_masks(masks)
        zeros = np.zeros(len(masks), dtype=np.int64)
        sel = planes_select_free(planes, zeros)
        low = planes_lowest_free(planes)
        assert sel.tolist() == low.tolist()

    @RELAXED
    @given(masks=mask_lists)
    def test_ranks_input_not_mutated(self, masks):
        planes = planes_of_masks(masks)
        ranks = np.arange(len(masks), dtype=np.int64)
        before = ranks.copy()
        planes_select_free(planes, ranks)
        assert np.array_equal(ranks, before)
