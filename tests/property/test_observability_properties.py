"""Observability is free of observer effects.

The license for shipping telemetry/profiling on by default in the
experiment harnesses is that **watching a run never changes it**:

* attaching :class:`AutomatonTelemetry` and/or a :class:`PhaseProfiler`
  leaves colors, rounds, and every metric *counter* bit-identical to an
  unobserved run (wall-clock ``phase_seconds`` is the one sanctioned
  addition, and only when a profiler is attached);
* the telemetry itself is engine-independent: the fast delivery core,
  the general loop, and the multiprocessing executor all fill identical
  collectors for the same seed;
* a *sampled* tracer (the fast-path-compatible kind) records the exact
  same thinned event stream on both delivery cores — sampling is
  deterministic, so lossy-by-contract never means run-to-run lossy.
"""

import multiprocessing as mp

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dima2ed import strong_color_arcs
from repro.core.edge_coloring import EdgeColoringProgram, color_edges
from repro.graphs.generators import erdos_renyi_avg_degree, scale_free, small_world
from repro.runtime.engine import SynchronousEngine
from repro.runtime.observe import AutomatonTelemetry, PhaseProfiler
from repro.runtime.parallel import ParallelEngine
from repro.runtime.trace import EventTracer

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="fork start method unavailable"
)


@st.composite
def family_graphs(draw, max_nodes: int = 40):
    """A graph from one of the paper's random families."""
    n = draw(st.integers(min_value=4, max_value=max_nodes))
    gseed = draw(st.integers(min_value=0, max_value=2**16))
    family = draw(st.sampled_from(["er", "sf", "sw"]))
    if family == "er":
        return erdos_renyi_avg_degree(n, min(4.0, n - 1), seed=gseed)
    if family == "sf":
        return scale_free(n, min(2, n - 1), seed=gseed)
    k = min(4, n - 1 - ((n - 1) % 2))  # small_world needs even k < n
    return small_world(n, max(2, k), 0.2, seed=gseed)


class TestNoObserverEffect:
    @RELAXED
    @given(g=family_graphs(), seed=st.integers(0, 2**16))
    def test_telemetry_and_profiler_leave_alg1_bit_identical(self, g, seed):
        bare = color_edges(g, seed=seed)
        telemetry = AutomatonTelemetry()
        profiler = PhaseProfiler()
        observed = color_edges(
            g, seed=seed, telemetry=telemetry, profiler=profiler
        )
        assert observed.colors == bare.colors
        assert observed.rounds == bare.rounds
        assert observed.supersteps == bare.supersteps
        # Every counter identical; phase_seconds is wall-clock only.
        assert observed.metrics.as_dict() == bare.metrics.as_dict()
        assert (
            observed.metrics.live_nodes_per_superstep
            == bare.metrics.live_nodes_per_superstep
        )
        # And the watcher actually watched.
        assert telemetry.supersteps == bare.metrics.supersteps
        assert profiler.total_seconds > 0.0

    @RELAXED
    @given(g=family_graphs(max_nodes=20), seed=st.integers(0, 2**16))
    def test_telemetry_leaves_dima2ed_bit_identical(self, g, seed):
        dg = g.to_directed()
        bare = strong_color_arcs(dg, seed=seed)
        telemetry = AutomatonTelemetry()
        observed = strong_color_arcs(dg, seed=seed, telemetry=telemetry)
        assert observed.colors == bare.colors
        assert observed.metrics.as_dict() == bare.metrics.as_dict()
        assert telemetry.colored_fraction()[-1] == pytest.approx(1.0)

    @RELAXED
    @given(g=family_graphs(), seed=st.integers(0, 2**16))
    def test_histogram_totals_track_live_counts(self, g, seed):
        telemetry = AutomatonTelemetry()
        result = color_edges(g, seed=seed, telemetry=telemetry)
        live = result.metrics.live_nodes_per_superstep
        assert telemetry.supersteps == len(live)
        for hist, count in zip(telemetry.state_histograms, live):
            assert sum(hist.values()) == count


class TestEngineIndependence:
    @RELAXED
    @given(g=family_graphs(), seed=st.integers(0, 2**16))
    def test_both_cores_fill_identical_telemetry(self, g, seed):
        fast_t = AutomatonTelemetry()
        slow_t = AutomatonTelemetry()
        fast = color_edges(g, seed=seed, telemetry=fast_t, fastpath=True)
        slow = color_edges(g, seed=seed, telemetry=slow_t, fastpath=False)
        assert fast.colors == slow.colors
        assert fast_t.to_dict() == slow_t.to_dict()

    @RELAXED
    @given(g=family_graphs(max_nodes=32), seed=st.integers(0, 2**16))
    def test_sampled_tracer_streams_identical_across_cores(self, g, seed):
        sample = {"*": 3, "invite": 2}
        fast_tr = EventTracer(sample=sample)
        slow_tr = EventTracer(sample=sample)
        fast_e = SynchronousEngine(
            g, EdgeColoringProgram, seed=seed, tracer=fast_tr, fastpath=True
        )
        slow_e = SynchronousEngine(
            g, EdgeColoringProgram, seed=seed, tracer=slow_tr, fastpath=False
        )
        # The sampled tracer keeps the fast engine on its fast path ...
        assert fast_e._fastpath_engaged()
        assert not slow_e._fastpath_engaged()
        fast_e.run()
        slow_e.run()
        # ... and both cores record the exact same thinned stream.
        assert list(fast_tr) == list(slow_tr)
        assert fast_tr.sampled_out == slow_tr.sampled_out


@needs_fork
class TestParallelTelemetry:
    @settings(
        max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        g=family_graphs(max_nodes=20),
        seed=st.integers(0, 2**16),
        workers=st.integers(2, 3),
    )
    def test_merged_worker_telemetry_matches_sequential(self, g, seed, workers):
        seq_t = AutomatonTelemetry()
        SynchronousEngine(g, EdgeColoringProgram, seed=seed, telemetry=seq_t).run()
        par_t = AutomatonTelemetry()
        ParallelEngine(
            g, EdgeColoringProgram, seed=seed, workers=workers, telemetry=par_t
        ).run()
        assert par_t.to_dict() == seq_t.to_dict()
