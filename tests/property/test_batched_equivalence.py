"""Bit-identity of the batched compute core against the per-node loop.

The batched kernels re-derive both algorithms as structure-of-arrays
supersteps; nothing in them shares code with the per-node programs, so
equality here is an end-to-end proof that the rewrite preserves the
semantics *and* the RNG draw sequence: the general per-node loop
(``fastpath=False, compute="pernode"``) and the batched core must agree
on every coloring, the round/superstep counts, the full metrics dict
and the final-state digest, for every graph family and seed.
"""

import hashlib

import pytest

from repro.core.dima2ed import strong_color_arcs
from repro.core.edge_coloring import color_edges
from repro.graphs.generators import (
    erdos_renyi_avg_degree,
    random_regular,
    scale_free,
    small_world,
)

FAMILIES = {
    "er": lambda seed: erdos_renyi_avg_degree(48, 5.0, seed=seed),
    "scale-free": lambda seed: scale_free(48, 3, seed=seed),
    "small-world": lambda seed: small_world(48, 4, 0.2, seed=seed),
    "regular": lambda seed: random_regular(48, 4, seed=seed),
}

SEEDS = (0, 1, 2)


def _digest(colors) -> str:
    return hashlib.sha256(repr(sorted(colors.items())).encode()).hexdigest()


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_alg1_batched_bit_identical(family, seed):
    g = FAMILIES[family](seed)
    reference = color_edges(g, seed=seed, fastpath=False, compute="pernode")
    batched = color_edges(g, seed=seed, compute="batched")
    assert batched.colors == reference.colors
    assert _digest(batched.colors) == _digest(reference.colors)
    assert batched.rounds == reference.rounds
    assert batched.supersteps == reference.supersteps
    assert batched.metrics.to_dict() == reference.metrics.to_dict()
    assert batched.palette == reference.palette


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_dima2ed_batched_bit_identical(family, seed):
    d = FAMILIES[family](seed).to_directed()
    reference = strong_color_arcs(d, seed=seed, fastpath=False, compute="pernode")
    batched = strong_color_arcs(d, seed=seed, compute="batched")
    assert batched.colors == reference.colors
    assert _digest(batched.colors) == _digest(reference.colors)
    assert batched.rounds == reference.rounds
    assert batched.supersteps == reference.supersteps
    assert batched.metrics.to_dict() == reference.metrics.to_dict()
