"""Checkpoint/restart is invisible: kill + restore ≡ never interrupted.

The resilience contract (ISSUE: checkpoint/restart pillar) is that a
run killed at an arbitrary superstep and resumed from its latest
checkpoint produces *exactly* the run that was never interrupted —
same coloring (order-independent digest), same superstep/round count,
same metrics dict, across every delivery core:

* the general per-node loop (``fastpath=False``),
* the fast path (``fastpath=True``),
* the batched SoA kernel (``BatchedEngine``).

The per-node cores share one checkpoint schema (kind ``"pernode"``), so
a snapshot captured on the fast path must also thaw on the general loop
and vice versa — that cross-core property is pinned here too.

Graphs come from the three random families the paper's experiments use
(Erdős–Rényi, scale-free, small-world), so all message-mix regimes of
the automaton get captured mid-flight: dense early rounds, sparse
endgame, nodes halting between capture and kill.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batched import Alg1Kernel
from repro.core.edge_coloring import EdgeColoringProgram
from repro.core.kernels_numba import Alg1KernelNumba
from repro.core.vectorized import Alg1VecKernel, DiMa2EdVecKernel
from repro.graphs.generators import erdos_renyi_avg_degree, scale_free, small_world
from repro.resilience import Checkpointer, CheckpointStore, resume_engine
from repro.runtime.engine import BatchedEngine, SynchronousEngine
from repro.types import canonical_edge
from repro.verify.differential import colors_digest

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def family_graphs(draw, max_nodes: int = 40):
    """A graph from one of the paper's random families."""
    n = draw(st.integers(min_value=4, max_value=max_nodes))
    gseed = draw(st.integers(min_value=0, max_value=2**16))
    family = draw(st.sampled_from(["er", "sf", "sw"]))
    if family == "er":
        return erdos_renyi_avg_degree(n, min(4.0, n - 1), seed=gseed)
    if family == "sf":
        return scale_free(n, min(2, n - 1), seed=gseed)
    k = min(4, n - 1 - ((n - 1) % 2))  # small_world needs even k < n
    return small_world(n, max(2, k), 0.2, seed=gseed)


def _program_colors(programs):
    """Order-independent {edge: color} over per-node program records."""
    colors = {}
    for prog in programs:
        inner = getattr(prog, "inner", prog)
        for v, c in inner.edge_colors.items():
            colors[canonical_edge(inner.node_id, v)] = c
    return colors


def _fingerprint_pernode(run):
    return (
        colors_digest(_program_colors(run.programs)),
        run.supersteps,
        run.completed,
        run.metrics.to_dict(),
    )


def _kill_fraction_to_superstep(fraction: float, total: int) -> int:
    """A kill point strictly inside the run (engines need budget >= 1)."""
    return max(1, min(total - 1, math.ceil(fraction * total))) if total > 1 else 1


class TestPernodeKillRestore:
    @RELAXED
    @given(
        graph=family_graphs(),
        seed=st.integers(min_value=0, max_value=2**16),
        kill_at=st.floats(min_value=0.05, max_value=0.95),
        every=st.integers(min_value=1, max_value=9),
        fastpath=st.booleans(),
    )
    def test_restore_is_bit_identical(self, graph, seed, kill_at, every, fastpath):
        factory = EdgeColoringProgram
        base = SynchronousEngine(graph, factory, seed=seed, fastpath=fastpath).run()
        assert base.completed

        kill = _kill_fraction_to_superstep(kill_at, base.supersteps)
        store = CheckpointStore(keep=2)
        killed = SynchronousEngine(
            graph,
            factory,
            seed=seed,
            fastpath=fastpath,
            max_supersteps=kill,
            checkpointer=Checkpointer(every, store),
        ).run()
        if killed.completed:
            # Nothing was interrupted (all programs halted early on a
            # sparse instance); the runs must already agree.
            assert _fingerprint_pernode(killed) == _fingerprint_pernode(base)
            return
        checkpoint = store.latest()
        # The budget-exhaustion capture guarantees a restore point even
        # when the kill superstep precedes the first periodic one.
        assert checkpoint is not None
        assert checkpoint.kind == "pernode"

        resumed = resume_engine(checkpoint, graph, fastpath=fastpath).run()
        assert _fingerprint_pernode(resumed) == _fingerprint_pernode(base)

    @RELAXED
    @given(
        graph=family_graphs(max_nodes=24),
        seed=st.integers(min_value=0, max_value=2**16),
        kill_at=st.floats(min_value=0.1, max_value=0.9),
        capture_fast=st.booleans(),
    )
    def test_cross_core_thaw(self, graph, seed, kill_at, capture_fast):
        """A fast-path snapshot thaws on the general loop and vice versa."""
        factory = EdgeColoringProgram
        base = SynchronousEngine(graph, factory, seed=seed).run()
        kill = _kill_fraction_to_superstep(kill_at, base.supersteps)
        store = CheckpointStore()
        killed = SynchronousEngine(
            graph,
            factory,
            seed=seed,
            fastpath=capture_fast,
            max_supersteps=kill,
            checkpointer=Checkpointer(3, store),
        ).run()
        if killed.completed:
            return
        resumed = resume_engine(
            store.latest(), graph, fastpath=not capture_fast
        ).run()
        assert _fingerprint_pernode(resumed) == _fingerprint_pernode(base)

    @RELAXED
    @given(
        graph=family_graphs(max_nodes=24),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_repeated_kills_still_converge_identically(self, graph, seed):
        """A run killed at *every* slice boundary ends bit-identical."""
        factory = EdgeColoringProgram
        base = SynchronousEngine(graph, factory, seed=seed).run()

        store = CheckpointStore(keep=2)
        checkpointer = Checkpointer(4, store)
        limit = max(1, base.supersteps // 5)
        run = SynchronousEngine(
            graph,
            factory,
            seed=seed,
            max_supersteps=limit,
            checkpointer=checkpointer,
        ).run()
        hops = 1
        while not run.completed:
            limit += max(1, base.supersteps // 5)
            run = resume_engine(
                store.latest(), graph, max_supersteps=limit,
                checkpointer=checkpointer,
            ).run()
            hops += 1
            assert hops < 50, "restore chain failed to make progress"
        assert _fingerprint_pernode(run) == _fingerprint_pernode(base)


class TestBatchedKillRestore:
    @RELAXED
    @given(
        graph=family_graphs(),
        seed=st.integers(min_value=0, max_value=2**16),
        kill_at=st.floats(min_value=0.05, max_value=0.95),
        every=st.integers(min_value=1, max_value=9),
    )
    def test_restore_is_bit_identical(self, graph, seed, kill_at, every):
        base_kernel = Alg1Kernel()
        base = BatchedEngine(graph, base_kernel, seed=seed).run()
        assert base.completed
        base_colors = {
            canonical_edge(s, t): c for s, t, c in base_kernel.assignments
        }

        kill = _kill_fraction_to_superstep(kill_at, base.supersteps)
        store = CheckpointStore(keep=2)
        killed = BatchedEngine(
            graph,
            Alg1Kernel(),
            seed=seed,
            max_supersteps=kill,
            checkpointer=Checkpointer(every, store),
        ).run()
        if killed.completed:
            return
        checkpoint = store.latest()
        assert checkpoint is not None
        assert checkpoint.kind == "batched"

        engine = resume_engine(checkpoint, graph)
        resumed = engine.run()
        resumed_colors = {
            canonical_edge(s, t): c for s, t, c in engine.kernel.assignments
        }
        assert resumed.completed
        assert resumed.supersteps == base.supersteps
        assert colors_digest(resumed_colors) == colors_digest(base_colors)
        assert resumed.metrics.to_dict() == base.metrics.to_dict()


class TestVectorizedKillRestore:
    """The fused plane kernels share the ``"batched"`` checkpoint kind;
    a mid-run snapshot must resume to the exact uninterrupted run —
    including the vectorized RNG state and the chunked assignment log —
    for Algorithm 1, DiMa2Ed (a DiGraph topology) and the numba kernel's
    interpreted fallback."""

    @RELAXED
    @given(
        graph=family_graphs(),
        seed=st.integers(min_value=0, max_value=2**16),
        kill_at=st.floats(min_value=0.05, max_value=0.95),
        every=st.integers(min_value=1, max_value=9),
        kernel_cls=st.sampled_from([Alg1VecKernel, Alg1KernelNumba]),
    )
    def test_alg1_restore_is_bit_identical(
        self, graph, seed, kill_at, every, kernel_cls
    ):
        base_kernel = kernel_cls()
        base = BatchedEngine(graph, base_kernel, seed=seed).run()
        assert base.completed
        base_colors = {
            canonical_edge(s, t): c for s, t, c in base_kernel.assignments
        }

        kill = _kill_fraction_to_superstep(kill_at, base.supersteps)
        store = CheckpointStore(keep=2)
        killed = BatchedEngine(
            graph,
            kernel_cls(),
            seed=seed,
            max_supersteps=kill,
            checkpointer=Checkpointer(every, store),
        ).run()
        if killed.completed:
            return
        checkpoint = store.latest()
        assert checkpoint is not None
        assert checkpoint.kind == "batched"

        engine = resume_engine(checkpoint, graph)
        resumed = engine.run()
        resumed_colors = {
            canonical_edge(s, t): c for s, t, c in engine.kernel.assignments
        }
        assert resumed.completed
        assert resumed.supersteps == base.supersteps
        assert colors_digest(resumed_colors) == colors_digest(base_colors)
        assert resumed.metrics.to_dict() == base.metrics.to_dict()

    @RELAXED
    @given(
        graph=family_graphs(max_nodes=24),
        seed=st.integers(min_value=0, max_value=2**16),
        kill_at=st.floats(min_value=0.05, max_value=0.95),
        every=st.integers(min_value=1, max_value=9),
    )
    def test_dima2ed_restore_is_bit_identical(
        self, graph, seed, kill_at, every
    ):
        """DiMa2Ed runs on a DiGraph — this also pins the checkpoint
        fingerprint's arc counting for directed topologies."""
        work = graph.to_directed()
        base_kernel = DiMa2EdVecKernel()
        base = BatchedEngine(work, base_kernel, seed=seed).run()
        assert base.completed
        base_colors = dict(
            ((s, t), c) for s, t, c in base_kernel.arc_assignments
        )

        kill = _kill_fraction_to_superstep(kill_at, base.supersteps)
        store = CheckpointStore(keep=2)
        killed = BatchedEngine(
            work,
            DiMa2EdVecKernel(),
            seed=seed,
            max_supersteps=kill,
            checkpointer=Checkpointer(every, store),
        ).run()
        if killed.completed:
            return
        checkpoint = store.latest()
        assert checkpoint is not None
        assert checkpoint.kind == "batched"

        engine = resume_engine(checkpoint, work)
        resumed = engine.run()
        resumed_colors = dict(
            ((s, t), c) for s, t, c in engine.kernel.arc_assignments
        )
        assert resumed.completed
        assert resumed.supersteps == base.supersteps
        assert resumed_colors == base_colors
        assert resumed.metrics.to_dict() == base.metrics.to_dict()
