"""Property tests: the vectorized RNG replay vs the stdlib, layer by layer.

:mod:`repro.core.vecrng` re-derives the per-node ``random.Random``
streams as whole-population numpy state.  Bit-exactness against the
stdlib is the module's contract (the vectorized kernels replay the same
draw sequence as the per-node engines), so every layer is pinned here
directly against its reference:

* ``child_seeds``          vs ``SeedSequence(seed).spawn(n)``
* ``mt_states_from_seeds`` vs ``random.Random(seed).getstate()``
* ``random_``/``randbelow``/``next_words`` vs the stdlib methods,
  including interleaved subset draws and pool-cycle crossings
* ``to_randoms``           round-trips a partially generated pool
"""

import random

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from numpy.random import SeedSequence

from repro.core.vecrng import VectorMT, child_seeds, mt_states_from_seeds
from repro.runtime.rng import spawn_node_rngs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

run_seeds = st.integers(min_value=0, max_value=2**63 - 1)
small_n = st.integers(min_value=1, max_value=12)


class TestChildSeeds:
    @RELAXED
    @given(seed=run_seeds, n=small_n)
    def test_matches_seedsequence_spawn(self, seed, n):
        # spawn_node_rngs seeds each Random with generate_state(1)[0]
        # (default uint32 dtype) — pin against exactly that expression.
        want = [
            int(child.generate_state(1)[0])
            for child in SeedSequence(seed).spawn(n)
        ]
        assert child_seeds(seed, n).tolist() == want

    def test_negative_seed_rejected(self):
        try:
            child_seeds(-1, 2)
        except Exception:
            return
        raise AssertionError("negative run seed must raise, not approximate")


class TestMtStates:
    @RELAXED
    @given(seed=run_seeds, n=small_n)
    def test_matches_random_seed(self, seed, n):
        seeds = child_seeds(seed, n)
        states = mt_states_from_seeds(seeds)
        assert states.shape == (n, 624)
        for i, s in enumerate(seeds.tolist()):
            _version, internal, _gauss = random.Random(s).getstate()
            assert states[i].tolist() == list(internal[:624])


class TestDraws:
    @RELAXED
    @given(seed=run_seeds, n=st.integers(min_value=2, max_value=8))
    def test_random_matches_stdlib(self, seed, n):
        vec = VectorMT.for_run(seed, n)
        refs = spawn_node_rngs(seed, n)
        ids = np.arange(n, dtype=np.int64)
        for _ in range(40):
            got = vec.random_(ids)
            want = [r.random() for r in refs]
            assert got.tolist() == want

    @RELAXED
    @given(
        seed=run_seeds,
        n=st.integers(min_value=2, max_value=8),
        data=st.data(),
    )
    def test_interleaved_subset_draws(self, seed, n, data):
        """Different subsets drawing different primitives per step —
        the automaton's live-set pattern — must stay in lockstep with
        per-stream ``Random`` objects advanced the same way."""
        vec = VectorMT.for_run(seed, n)
        refs = spawn_node_rngs(seed, n)
        for step in range(25):
            subset = data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=1,
                    max_size=n,
                ),
                label=f"subset{step}",
            )
            ids = np.array(sorted(subset), dtype=np.int64)
            kind = data.draw(
                st.sampled_from(["random", "randbelow", "words"]),
                label=f"kind{step}",
            )
            if kind == "random":
                got = vec.random_(ids).tolist()
                want = [refs[i].random() for i in ids.tolist()]
            elif kind == "randbelow":
                bounds = np.array(
                    [
                        data.draw(
                            st.integers(min_value=1, max_value=50),
                            label=f"bound{step}_{i}",
                        )
                        for i in range(len(ids))
                    ],
                    dtype=np.int64,
                )
                got = vec.randbelow(ids, bounds).tolist()
                want = [
                    refs[i]._randbelow(int(b))
                    for i, b in zip(ids.tolist(), bounds.tolist())
                ]
            else:
                got = vec.next_words(ids).tolist()
                want = [refs[i].getrandbits(32) for i in ids.tolist()]
            assert got == want, f"step {step} diverged ({kind})"

    def test_pool_cycle_crossing(self):
        """624 words per pool; 400 random() calls consume 800 words and
        cross the regeneration boundary, including the fused two-word
        read landing exactly on mti == 623."""
        vec = VectorMT.for_run(99, 3)
        refs = spawn_node_rngs(99, 3)
        ids = np.arange(3, dtype=np.int64)
        for _ in range(400):
            assert vec.random_(ids).tolist() == [r.random() for r in refs]

    @RELAXED
    @given(seed=run_seeds)
    def test_choice_entropy_source(self, seed):
        """randbelow is the entropy behind ``Random.choice`` — the call
        the matching automaton actually makes."""
        vec = VectorMT.for_run(seed, 4)
        refs = spawn_node_rngs(seed, 4)
        ids = np.arange(4, dtype=np.int64)
        items = list(range(7))
        for _ in range(30):
            got = vec.randbelow(ids, np.full(4, len(items), dtype=np.int64))
            want = [r.choice(items) for r in refs]
            assert [items[g] for g in got.tolist()] == want


class TestStateRoundTrip:
    @RELAXED
    @given(seed=run_seeds, draws=st.integers(min_value=0, max_value=100))
    def test_to_randoms_mid_stream(self, seed, draws):
        """Handing back ``Random`` objects mid-stream (with a partially
        generated lazy pool) must continue the exact sequence."""
        n = 3
        vec = VectorMT.for_run(seed, n)
        refs = spawn_node_rngs(seed, n)
        ids = np.arange(n, dtype=np.int64)
        for _ in range(draws):
            vec.random_(ids)
            for r in refs:
                r.random()
        handed = vec.to_randoms()
        for got, want in zip(handed, refs):
            assert [got.random() for _ in range(10)] == [
                want.random() for _ in range(10)
            ]

    @RELAXED
    @given(seed=run_seeds, draws=st.integers(min_value=0, max_value=60))
    def test_from_randoms_adopts_streams(self, seed, draws):
        refs = spawn_node_rngs(seed, 3)
        for r in refs:
            for _ in range(draws):
                r.random()
        shadow = spawn_node_rngs(seed, 3)
        for r in shadow:
            for _ in range(draws):
                r.random()
        vec = VectorMT.from_randoms(refs)
        ids = np.arange(3, dtype=np.int64)
        for _ in range(20):
            assert vec.random_(ids).tolist() == [r.random() for r in shadow]
