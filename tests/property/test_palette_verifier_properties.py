"""Property-based tests: palette helpers and verifier soundness."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.palette import (
    ColorLedger,
    colors_of,
    first_free,
    lowest_free_bit,
    mask_of,
)
from repro.verify import check_proper_edge_coloring, check_strong_arc_coloring
from repro.graphs.linegraph import arcs_conflict, strong_conflict_graph

from .strategies import graphs, nonempty_graphs, symmetric_digraphs

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

color_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=15)


class TestFirstFree:
    @RELAXED
    @given(taken=color_sets)
    def test_result_not_taken(self, taken):
        c = first_free(taken)
        assert c not in taken

    @RELAXED
    @given(taken=color_sets)
    def test_result_minimal(self, taken):
        c = first_free(taken)
        assert all(i in taken for i in range(c))

    @RELAXED
    @given(a=color_sets, b=color_sets)
    def test_union_semantics(self, a, b):
        assert first_free(a, b) == first_free(a | b)


class TestScanVsBitmaskEquivalence:
    """`first_free` (set scan) and `lowest_free_bit` (bitmask identity)
    must agree on every input the kernels can produce — the batched core
    uses the bitmask form while the per-node path scans a set, and any
    disagreement would silently break tier bit-identity."""

    @RELAXED
    @given(taken=color_sets)
    def test_first_free_equals_lowest_free_bit(self, taken):
        assert first_free(taken) == lowest_free_bit(mask_of(taken))

    @RELAXED
    @given(a=color_sets, b=color_sets)
    def test_union_equals_mask_or(self, a, b):
        assert first_free(a, b) == lowest_free_bit(mask_of(a) | mask_of(b))

    @RELAXED
    @given(taken=color_sets)
    def test_mask_roundtrip(self, taken):
        assert set(colors_of(mask_of(taken))) == taken

    def test_empty_mask(self):
        assert lowest_free_bit(0) == 0 == first_free(set())

    @RELAXED
    @given(k=st.integers(min_value=1, max_value=300))
    def test_dense_mask(self, k):
        # All of 0..k-1 taken: the answer is k, even past word boundaries
        # (bigint masks — k > 64 exercises multi-limb carries).
        dense = (1 << k) - 1
        assert lowest_free_bit(dense) == k == first_free(range(k))

    @RELAXED
    @given(k=st.integers(min_value=0, max_value=300), taken=color_sets)
    def test_dense_prefix_plus_noise(self, k, taken):
        combined = set(range(k)) | taken
        assert first_free(combined) == lowest_free_bit(mask_of(combined))


class TestLedger:
    @RELAXED
    @given(consumed=st.lists(st.integers(0, 20), max_size=10))
    def test_proposal_avoids_consumed(self, consumed):
        ledger = ColorLedger([1])
        for c in consumed:
            ledger.consume(c)
        assert ledger.propose_for(1) not in ledger.used

    @RELAXED
    @given(
        mine=st.lists(st.integers(0, 20), max_size=8),
        theirs=st.lists(st.integers(0, 20), max_size=8),
    )
    def test_proposal_avoids_neighbor_knowledge(self, mine, theirs):
        ledger = ColorLedger([1])
        for c in mine:
            ledger.consume(c)
        ledger.learn(1, theirs)
        proposal = ledger.propose_for(1)
        assert proposal not in set(mine) | set(theirs)

    @RELAXED
    @given(colors=st.lists(st.integers(0, 20), max_size=10))
    def test_fresh_drains_exactly_once(self, colors):
        ledger = ColorLedger([])
        for c in colors:
            ledger.consume(c)
        fresh = ledger.take_fresh()
        assert sorted(set(colors)) == fresh
        assert ledger.take_fresh() == []


class TestVerifierSoundness:
    """The verifier must accept known-good and reject known-bad inputs."""

    @RELAXED
    @given(g=graphs(max_nodes=10))
    def test_rainbow_coloring_always_proper(self, g):
        # Distinct color per edge is trivially proper.
        coloring = {e: i for i, e in enumerate(g.edge_list())}
        assert check_proper_edge_coloring(g, coloring) == []

    @RELAXED
    @given(g=nonempty_graphs(max_nodes=10))
    def test_monochrome_flagged_iff_adjacent_edges_exist(self, g):
        coloring = {e: 0 for e in g.edges()}
        violations = check_proper_edge_coloring(g, coloring)
        has_adjacent = any(g.degree(u) >= 2 for u in g)
        assert bool(violations) == has_adjacent

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(d=symmetric_digraphs(max_nodes=6))
    def test_strong_verifier_agrees_with_conflict_graph(self, d):
        # Color by conflict-graph structure: give each arc its conflict-
        # graph greedy color -> valid; then merge two conflicting arcs'
        # colors -> invalid.
        cg, index = strong_conflict_graph(d)
        arc_of = index
        coloring = {}
        for i in sorted(cg.nodes()):
            taken = {coloring[arc_of[j]] for j in cg.neighbors(i) if arc_of[j] in coloring}
            c = 0
            while c in taken:
                c += 1
            coloring[arc_of[i]] = c
        assert check_strong_arc_coloring(d, coloring) == []
        # corrupt: force the first conflicting pair to share a color
        for i in sorted(cg.nodes()):
            nbrs = sorted(cg.neighbors(i))
            if nbrs:
                coloring[arc_of[nbrs[0]]] = coloring[arc_of[i]]
                assert check_strong_arc_coloring(d, coloring) != []
                break

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(d=symmetric_digraphs(max_nodes=6))
    def test_conflict_predicate_symmetric(self, d):
        arcs = d.arc_list()
        for a in arcs:
            for b in arcs:
                assert arcs_conflict(d, a, b) == arcs_conflict(d, b, a)
