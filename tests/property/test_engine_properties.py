"""Property-based tests of engine semantics (sync, async, parallel).

These pin the delivery laws with arbitrary topologies and a gossip
program whose state fingerprints everything it ever heard — any
misdelivery, reorder, or lost/duplicated message changes the
fingerprint.
"""

import multiprocessing as mp
from typing import Sequence

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.async_engine import AsyncEngine
from repro.runtime.engine import SynchronousEngine
from repro.runtime.message import Message
from repro.runtime.node import Context, NodeProgram

from .strategies import graphs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class Fingerprint(NodeProgram):
    """Gossips a rolling hash of everything heard for k supersteps."""

    K = 4

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.state = node_id + 1

    def on_superstep(self, ctx: Context, inbox: Sequence[Message]):
        for msg in inbox:
            # order-sensitive mixing: reordering changes the fingerprint
            self.state = (self.state * 31 + msg.sender * 17 + msg.payload) % 1_000_003
        self.state = (self.state + ctx.rng.randrange(1000)) % 1_000_003
        if ctx.superstep < self.K:
            ctx.broadcast(self.state)
        else:
            self.halt()


class TestDeliveryLaws:
    @RELAXED
    @given(g=graphs(max_nodes=10), seed=st.integers(0, 2**10))
    def test_conservation(self, g, seed):
        """Every delivered copy corresponds to a live one-hop neighbor."""
        run = SynchronousEngine(g, Fingerprint, seed=seed).run()
        m = run.metrics
        assert run.completed
        # K+1 supersteps, everyone lives K+1 supersteps, broadcasts K times.
        assert m.messages_sent == g.num_nodes * Fingerprint.K
        # all receivers stay live while broadcasts fly (halting is at K)
        expected_copies = Fingerprint.K * sum(g.degree(u) for u in g)
        assert m.messages_delivered == expected_copies
        assert m.messages_dropped == 0

    @RELAXED
    @given(g=graphs(max_nodes=10), seed=st.integers(0, 2**10))
    def test_determinism(self, g, seed):
        a = SynchronousEngine(g, Fingerprint, seed=seed).run()
        b = SynchronousEngine(g, Fingerprint, seed=seed).run()
        assert [p.state for p in a.programs] == [p.state for p in b.programs]


class TestAsyncEquivalenceProperty:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        g=graphs(max_nodes=8),
        seed=st.integers(0, 2**10),
        max_delay=st.integers(1, 6),
    )
    def test_synchronizer_reconstructs_rounds(self, g, seed, max_delay):
        seq = SynchronousEngine(g, Fingerprint, seed=seed).run()
        asy = AsyncEngine(g, Fingerprint, seed=seed, max_delay=max_delay).run()
        assert asy.completed
        assert [p.state for p in asy.programs] == [p.state for p in seq.programs]
        assert asy.metrics.messages_sent == seq.metrics.messages_sent
        assert asy.metrics.messages_delivered == seq.metrics.messages_delivered


needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="fork start method unavailable"
)


@needs_fork
class TestParallelEquivalenceProperty:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(g=graphs(max_nodes=8, min_nodes=2), seed=st.integers(0, 2**8))
    def test_partitioned_execution_identical(self, g, seed):
        from repro.runtime.parallel import ParallelEngine

        seq = SynchronousEngine(g, Fingerprint, seed=seed).run()
        par = ParallelEngine(g, Fingerprint, seed=seed, workers=2).run()
        assert [p.state for p in par.programs] == [p.state for p in seq.programs]
