"""Property-based tests: faults at rate 0 and transport at loss 0 are
invisible.

Two invariance laws protect the experiment pipeline:

1. A fault filter whose rates are all zero must not perturb the
   algorithm's result at all — the filter draws from its *own* RNG, so
   attaching it cannot shift the per-node streams.
2. The reliable transport over a loss-free network must reproduce the
   bare run byte-for-byte: same colorings, same palette, same number of
   application rounds.  The decorator passes the engine RNG through to
   the inner program untouched, and these tests pin that contract.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dima2ed import strong_color_arcs
from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.runtime.faults import (
    BurstLoss,
    DropRandomMessages,
    DuplicateMessages,
    ReorderWithinRound,
    compose,
)

from .strategies import graphs, nonempty_graphs, symmetric_digraphs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def zero_rate_faults(seed: int):
    return compose(
        DropRandomMessages(0.0, seed=seed),
        DuplicateMessages(0.0, seed=seed + 1),
        BurstLoss(0.0, seed=seed + 2),
        ReorderWithinRound(0.0, seed=seed + 3),
    )


class TestZeroRateFaultsAreInvisible:
    @RELAXED
    @given(graphs(max_nodes=10), st.integers(min_value=0, max_value=2**31))
    def test_edge_coloring_unperturbed(self, graph, seed):
        clean = color_edges(graph, seed=seed)
        faulty = color_edges(graph, seed=seed, faults=zero_rate_faults(seed))
        assert faulty.colors == clean.colors
        assert faulty.rounds == clean.rounds
        assert faulty.num_colors == clean.num_colors

    @RELAXED
    @given(symmetric_digraphs(max_nodes=7), st.integers(min_value=0, max_value=2**31))
    def test_dima2ed_unperturbed(self, digraph, seed):
        clean = strong_color_arcs(digraph, seed=seed)
        faulty = strong_color_arcs(
            digraph, seed=seed, faults=zero_rate_faults(seed)
        )
        assert faulty.colors == clean.colors
        assert faulty.rounds == clean.rounds


class TestLosslessTransportIsTransparent:
    @RELAXED
    @given(nonempty_graphs(max_nodes=9), st.integers(min_value=0, max_value=2**31))
    def test_edge_coloring_identical(self, graph, seed):
        bare = color_edges(graph, seed=seed)
        transported = color_edges(graph, seed=seed, transport=True)
        assert transported.colors == bare.colors
        assert transported.rounds == bare.rounds
        assert transported.num_colors == bare.num_colors
        assert transported.metrics.retransmissions == 0

    @RELAXED
    @given(symmetric_digraphs(max_nodes=6), st.integers(min_value=0, max_value=2**31))
    def test_dima2ed_identical(self, digraph, seed):
        bare = strong_color_arcs(digraph, seed=seed)
        transported = strong_color_arcs(digraph, seed=seed, transport=True)
        assert transported.colors == bare.colors
        assert transported.rounds == bare.rounds
        assert transported.metrics.retransmissions == 0

    @RELAXED
    @given(nonempty_graphs(max_nodes=9), st.integers(min_value=0, max_value=2**31))
    def test_recovery_mode_composes_with_transport(self, graph, seed):
        # Recovery changes the algorithm (persistent reservations,
        # heartbeats), so it is compared against itself, not the bare
        # run: with and without transport must agree at zero loss.
        params = EdgeColoringParams(recovery=True)
        bare = color_edges(graph, seed=seed, params=params)
        transported = color_edges(graph, seed=seed, params=params, transport=True)
        assert transported.colors == bare.colors
        assert transported.rounds == bare.rounds
