"""Property-based tests: faults at rate 0 and transport at loss 0 are
invisible.

Two invariance laws protect the experiment pipeline:

1. A fault filter whose rates are all zero must not perturb the
   algorithm's result at all — the filter draws from its *own* RNG, so
   attaching it cannot shift the per-node streams.
2. The reliable transport over a loss-free network must reproduce the
   bare run byte-for-byte: same colorings, same palette, same number of
   application rounds.  The decorator passes the engine RNG through to
   the inner program untouched, and these tests pin that contract.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dima2ed import strong_color_arcs
from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.runtime.faults import (
    BurstLoss,
    DropRandomMessages,
    DuplicateMessages,
    ReorderWithinRound,
    compose,
)

from .strategies import graphs, nonempty_graphs, symmetric_digraphs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def zero_rate_faults(seed: int):
    return compose(
        DropRandomMessages(0.0, seed=seed),
        DuplicateMessages(0.0, seed=seed + 1),
        BurstLoss(0.0, seed=seed + 2),
        ReorderWithinRound(0.0, seed=seed + 3),
    )


class TestZeroRateFaultsAreInvisible:
    @RELAXED
    @given(graphs(max_nodes=10), st.integers(min_value=0, max_value=2**31))
    def test_edge_coloring_unperturbed(self, graph, seed):
        clean = color_edges(graph, seed=seed)
        faulty = color_edges(graph, seed=seed, faults=zero_rate_faults(seed))
        assert faulty.colors == clean.colors
        assert faulty.rounds == clean.rounds
        assert faulty.num_colors == clean.num_colors

    @RELAXED
    @given(symmetric_digraphs(max_nodes=7), st.integers(min_value=0, max_value=2**31))
    def test_dima2ed_unperturbed(self, digraph, seed):
        clean = strong_color_arcs(digraph, seed=seed)
        faulty = strong_color_arcs(
            digraph, seed=seed, faults=zero_rate_faults(seed)
        )
        assert faulty.colors == clean.colors
        assert faulty.rounds == clean.rounds


class TestStableVerdictsAreOrderIndependent:
    """``stable=True`` fault verdicts are pure functions of
    ``(seed, superstep, sender, receiver)`` — the same copies judged in
    any order (e.g. under a partitioned delivery schedule) get the same
    verdicts, unlike the default shared-RNG mode where each verdict
    depends on how many draws preceded it."""

    copies = st.lists(
        st.tuples(
            st.integers(0, 50),  # superstep
            st.integers(0, 30),  # sender
            st.integers(0, 30),  # receiver
        ),
        min_size=2,
        max_size=40,
        unique=True,
    )

    @staticmethod
    def _verdicts(model_factory, copy_list):
        from repro.runtime.message import Message

        model = model_factory()
        return [
            model(s, Message(sender=u, dest=v, payload=None), v)
            for s, u, v in copy_list
        ]

    @RELAXED
    @given(copies=copies, seed=st.integers(0, 2**31))
    def test_stable_drop_invariant_under_permutation(self, copies, seed):
        fwd = self._verdicts(
            lambda: DropRandomMessages(0.5, seed=seed, stable=True), copies
        )
        rev = self._verdicts(
            lambda: DropRandomMessages(0.5, seed=seed, stable=True),
            list(reversed(copies)),
        )
        assert fwd == list(reversed(rev))

    @RELAXED
    @given(copies=copies, seed=st.integers(0, 2**31))
    def test_stable_duplicate_invariant_under_permutation(self, copies, seed):
        fwd = self._verdicts(
            lambda: DuplicateMessages(0.5, seed=seed, stable=True), copies
        )
        rev = self._verdicts(
            lambda: DuplicateMessages(0.5, seed=seed, stable=True),
            list(reversed(copies)),
        )
        assert fwd == list(reversed(rev))

    @RELAXED
    @given(copies=copies, seed=st.integers(0, 2**31))
    def test_legacy_drop_is_order_dependent_by_construction(self, copies, seed):
        # Documents the default mode's contract: verdicts come from one
        # sequential stream, so the i-th judged copy gets the i-th draw
        # regardless of its coordinates.
        import random as _random

        fwd = self._verdicts(
            lambda: DropRandomMessages(0.5, seed=seed, stable=False), copies
        )
        rng = _random.Random(seed)
        assert fwd == [rng.random() >= 0.5 for _ in copies]

    @RELAXED
    @given(
        seed=st.integers(0, 2**31),
        superstep=st.integers(0, 50),
        receiver=st.integers(0, 30),
        n=st.integers(2, 12),
    )
    def test_stable_reorder_permutation_is_per_inbox(
        self, seed, superstep, receiver, n
    ):
        # The same inbox shuffles identically no matter which (or how
        # many) other inboxes were shuffled first.
        from repro.runtime.message import Message

        def shuffled(warmup_inboxes):
            model = ReorderWithinRound(1.0, seed=seed, stable=True)
            for s, r in warmup_inboxes:
                other = [Message(sender=i, dest=-1, payload=None) for i in range(3)]
                model.reorder_inbox(s, r, other)
            inbox = [Message(sender=i, dest=-1, payload=None) for i in range(n)]
            model.reorder_inbox(superstep, receiver, inbox)
            return [m.sender for m in inbox]

        assert shuffled([]) == shuffled([(0, 0), (1, 5), (superstep, receiver + 1)])

    @RELAXED
    @given(graphs(max_nodes=10), st.integers(min_value=0, max_value=2**31))
    def test_stable_faulty_runs_reproduce(self, graph, seed):
        def run():
            return color_edges(
                graph,
                seed=seed,
                faults=compose(
                    DropRandomMessages(0.05, seed=seed, stable=True),
                    DuplicateMessages(0.05, seed=seed + 1, stable=True),
                ),
                params=EdgeColoringParams(recovery=True),
            )

        a, b = run(), run()
        assert a.colors == b.colors
        assert a.rounds == b.rounds
        assert a.metrics.to_dict() == b.metrics.to_dict()


class TestLosslessTransportIsTransparent:
    @RELAXED
    @given(nonempty_graphs(max_nodes=9), st.integers(min_value=0, max_value=2**31))
    def test_edge_coloring_identical(self, graph, seed):
        bare = color_edges(graph, seed=seed)
        transported = color_edges(graph, seed=seed, transport=True)
        assert transported.colors == bare.colors
        assert transported.rounds == bare.rounds
        assert transported.num_colors == bare.num_colors
        assert transported.metrics.retransmissions == 0

    @RELAXED
    @given(symmetric_digraphs(max_nodes=6), st.integers(min_value=0, max_value=2**31))
    def test_dima2ed_identical(self, digraph, seed):
        bare = strong_color_arcs(digraph, seed=seed)
        transported = strong_color_arcs(digraph, seed=seed, transport=True)
        assert transported.colors == bare.colors
        assert transported.rounds == bare.rounds
        assert transported.metrics.retransmissions == 0

    @RELAXED
    @given(nonempty_graphs(max_nodes=9), st.integers(min_value=0, max_value=2**31))
    def test_recovery_mode_composes_with_transport(self, graph, seed):
        # Recovery changes the algorithm (persistent reservations,
        # heartbeats), so it is compared against itself, not the bare
        # run: with and without transport must agree at zero loss.
        params = EdgeColoringParams(recovery=True)
        bare = color_edges(graph, seed=seed, params=params)
        transported = color_edges(graph, seed=seed, params=params, transport=True)
        assert transported.colors == bare.colors
        assert transported.rounds == bare.rounds
