"""Property-based tests: matching discovery and vertex cover."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.matching import find_maximal_matching
from repro.core.vertex_cover import find_vertex_cover
from repro.verify import check_maximal_matching

from .strategies import graphs

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMatchingProperties:
    @RELAXED
    @given(g=graphs(max_nodes=12), seed=st.integers(0, 2**16))
    def test_always_maximal_matching(self, g, seed):
        result = find_maximal_matching(g, seed=seed)
        assert check_maximal_matching(g, result.edges) == []

    @RELAXED
    @given(g=graphs(max_nodes=12), seed=st.integers(0, 2**16))
    def test_partner_map_involution(self, g, seed):
        result = find_maximal_matching(g, seed=seed)
        for u, v in result.partner.items():
            assert result.partner[v] == u
            assert u != v

    @RELAXED
    @given(g=graphs(max_nodes=12), seed=st.integers(0, 2**16))
    def test_size_bounds(self, g, seed):
        result = find_maximal_matching(g, seed=seed)
        assert result.size <= g.num_nodes // 2
        # maximal matchings are at least half the maximum matching; we
        # check the weaker but universal bound vs edge count.
        if g.num_edges:
            assert result.size >= 1


class TestVertexCoverProperties:
    @RELAXED
    @given(g=graphs(max_nodes=12), seed=st.integers(0, 2**16))
    def test_is_cover(self, g, seed):
        result = find_vertex_cover(g, seed=seed)
        for u, v in g.edges():
            assert u in result.cover or v in result.cover

    @RELAXED
    @given(g=graphs(max_nodes=12), seed=st.integers(0, 2**16))
    def test_two_approximation_certificate(self, g, seed):
        result = find_vertex_cover(g, seed=seed)
        # matching size lower-bounds any cover; ours is exactly twice it
        assert result.size == 2 * result.approximation_bound
