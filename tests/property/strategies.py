"""Shared hypothesis strategies for graph-valued properties.

Graphs are drawn as (n, edge-subset) pairs: hypothesis shrinks toward
fewer nodes and fewer edges, which keeps failing examples readable.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graphs.adjacency import Graph


@st.composite
def graphs(draw, max_nodes: int = 12, min_nodes: int = 0) -> Graph:
    """A simple undirected graph with up to ``max_nodes`` nodes."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    g = Graph.from_num_nodes(n)
    if n >= 2:
        all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        chosen = draw(
            st.lists(st.sampled_from(all_pairs), unique=True, max_size=len(all_pairs))
        )
        g.add_edges_from(chosen)
    return g


@st.composite
def nonempty_graphs(draw, max_nodes: int = 12) -> Graph:
    """A graph with at least one edge."""
    g = draw(graphs(max_nodes=max_nodes, min_nodes=2))
    if g.num_edges == 0:
        g.add_edge(0, 1)
    return g


@st.composite
def symmetric_digraphs(draw, max_nodes: int = 8):
    """A symmetric digraph (closure of a random undirected graph)."""
    return draw(graphs(max_nodes=max_nodes)).to_directed()
