"""Bit-identity of the delivery cores.

The fast-path ``SynchronousEngine`` and the worker-local-first
``ParallelEngine`` are pure optimizations: for every program, topology,
seed and worker count they must reproduce the general loop's results
*exactly* — final program states, every metric counter (including the
per-superstep live-node trace), superstep count and completion flag.
These properties are the license for ``fastpath=True`` being the
default; a single diverging counter here means the optimization changed
semantics, not just speed.

Graphs are drawn from the three random families the paper's experiments
use (Erdős–Rényi, scale-free, small-world) so the tiers of the fast
path all get exercised: dense broadcast supersteps, sparse ones, mixed
unicast phases (the coloring automata alternate all four phase kinds),
and halted-receiver discards near termination.
"""

import multiprocessing as mp
from typing import Sequence

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dima2ed import strong_color_arcs
from repro.core.edge_coloring import EdgeColoringProgram, color_edges
from repro.graphs.generators import erdos_renyi_avg_degree, scale_free, small_world
from repro.runtime.engine import SynchronousEngine
from repro.runtime.message import Message
from repro.runtime.node import Context, NodeProgram
from repro.runtime.parallel import ParallelEngine

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="fork start method unavailable"
)


@st.composite
def family_graphs(draw, max_nodes: int = 48):
    """A graph from one of the paper's random families."""
    n = draw(st.integers(min_value=4, max_value=max_nodes))
    gseed = draw(st.integers(min_value=0, max_value=2**16))
    family = draw(st.sampled_from(["er", "sf", "sw"]))
    if family == "er":
        return erdos_renyi_avg_degree(n, min(4.0, n - 1), seed=gseed)
    if family == "sf":
        return scale_free(n, min(2, n - 1), seed=gseed)
    k = min(4, n - 1 - ((n - 1) % 2))  # small_world needs even k < n
    return small_world(n, max(2, k), 0.2, seed=gseed)


class Chatter(NodeProgram):
    """Mixes broadcasts and unicast fans so every delivery tier runs.

    Even supersteps broadcast (vector tiers on larger graphs); odd
    supersteps unicast to a rotating subset of neighbors (scalar tier,
    all-unicast model check).  Nodes halt at staggered times, so late
    supersteps exercise discard-on-halted accounting.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.trace = node_id + 1

    def on_superstep(self, ctx: Context, inbox: Sequence[Message]):
        for msg in inbox:
            self.trace = (self.trace * 31 + msg.sender * 17 + msg.payload) % 1_000_003
        self.trace = (self.trace + ctx.rng.randrange(997)) % 1_000_003
        s = ctx.superstep
        if s >= 6 + self.node_id % 3:
            self.halt()
            return
        if s % 2 == 0:
            ctx.broadcast(self.trace)
        else:
            for v in ctx.neighbors[s % 3 :: 3]:
                ctx.send(v, self.trace + v)


def _identical(a, b):
    assert a.metrics.to_dict() == b.metrics.to_dict()
    assert a.supersteps == b.supersteps
    assert a.completed == b.completed


class TestFastPathBitIdentity:
    @RELAXED
    @given(g=family_graphs(), seed=st.integers(0, 2**16))
    def test_chatter_states_and_metrics(self, g, seed):
        slow = SynchronousEngine(g, Chatter, seed=seed, fastpath=False).run()
        fast = SynchronousEngine(g, Chatter, seed=seed, fastpath=True).run()
        _identical(slow, fast)
        assert [p.trace for p in slow.programs] == [p.trace for p in fast.programs]

    @RELAXED
    @given(g=family_graphs(), seed=st.integers(0, 2**16))
    def test_algorithm1_coloring(self, g, seed):
        slow = color_edges(g, seed=seed, fastpath=False)
        fast = color_edges(g, seed=seed, fastpath=True)
        assert fast.colors == slow.colors
        assert fast.rounds == slow.rounds
        assert fast.metrics.to_dict() == slow.metrics.to_dict()

    @RELAXED
    @given(g=family_graphs(max_nodes=24), seed=st.integers(0, 2**16))
    def test_dima2ed_coloring(self, g, seed):
        dg = g.to_directed()
        slow = strong_color_arcs(dg, seed=seed, fastpath=False)
        fast = strong_color_arcs(dg, seed=seed, fastpath=True)
        assert fast.colors == slow.colors
        assert fast.rounds == slow.rounds
        assert fast.metrics.to_dict() == slow.metrics.to_dict()


@needs_fork
class TestParallelBitIdentity:
    @RELAXED
    @given(
        g=family_graphs(max_nodes=24),
        seed=st.integers(0, 2**16),
        workers=st.integers(1, 4),
    )
    def test_chatter_matches_sequential(self, g, seed, workers):
        seq = SynchronousEngine(g, Chatter, seed=seed, strict=False).run()
        par = ParallelEngine(g, Chatter, seed=seed, workers=workers).run()
        _identical(seq, par)
        assert [p.trace for p in seq.programs] == [p.trace for p in par.programs]

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        g=family_graphs(max_nodes=20),
        seed=st.integers(0, 2**16),
        workers=st.integers(2, 3),
    )
    def test_algorithm1_matches_sequential(self, g, seed, workers):
        factory = EdgeColoringProgram
        seq = SynchronousEngine(g, factory, seed=seed).run()
        par = ParallelEngine(g, factory, seed=seed, workers=workers).run()
        _identical(seq, par)
        assert [p.edge_colors for p in seq.programs] == [
            p.edge_colors for p in par.programs
        ]
