"""Property-based tests: persistence, export, and generator invariants."""

import re

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.weighted_matching import find_weighted_matching
from repro.graphs.generators.degree_sequence import degree_sequence_graph, is_graphical
from repro.graphs.export_dot import to_dot
from repro.graphs.io import read_edge_list, write_edge_list
from repro.types import canonical_edge

from .strategies import graphs, nonempty_graphs

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestIoRoundTrip:
    @RELAXED
    @given(g=graphs(max_nodes=14))
    def test_edge_list_roundtrip_exact(self, g):
        import pathlib
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "g.edges"
            write_edge_list(g, path)
            assert read_edge_list(path) == g


class TestDotWellFormed:
    @RELAXED
    @given(g=graphs(max_nodes=10))
    def test_braces_balanced_and_edges_present(self, g):
        dot = to_dot(g)
        assert dot.count("{") == dot.count("}") == 1
        assert dot.count(" -- ") == g.num_edges

    @RELAXED
    @given(g=nonempty_graphs(max_nodes=10))
    def test_colored_export_labels_every_edge(self, g):
        coloring = {e: i for i, e in enumerate(g.edge_list())}
        dot = to_dot(g, edge_colors=coloring)
        labels = re.findall(r'label="(\d+)"', dot)
        assert sorted(int(x) for x in labels) == sorted(coloring.values())


class TestDegreeSequenceProperties:
    @RELAXED
    @given(g=graphs(max_nodes=12))
    def test_every_graph_degree_sequence_is_graphical(self, g):
        seq = [g.degree(u) for u in sorted(g.nodes())]
        assert is_graphical(seq)

    @RELAXED
    @given(g=graphs(max_nodes=10), seed=st.integers(0, 2**10))
    def test_resampling_preserves_sequence(self, g, seed):
        seq = [g.degree(u) for u in sorted(g.nodes())]
        resampled = degree_sequence_graph(seq, seed=seed)
        assert [resampled.degree(u) for u in range(len(seq))] == seq


class TestWeightedMatchingDominance:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        g=nonempty_graphs(max_nodes=10),
        weight_seed=st.integers(0, 2**10),
    )
    def test_matched_edges_locally_dominant_certificate(self, g, weight_seed):
        """Every unmatched edge must lose to an adjacent matched edge.

        This is the structural property behind the 1/2-approximation:
        charge each unmatched edge to a heavier matched neighbor.
        (Strict inequality is guaranteed by the unique tie-break order.)
        """
        import random

        rng = random.Random(weight_seed)
        weights = {e: rng.uniform(0.1, 10.0) for e in g.edges()}
        result = find_weighted_matching(g, weights)
        matched_nodes = set(result.partner)

        def order_key(e):
            return (weights[e], *e)

        for e in g.edges():
            if e in result.edges:
                continue
            u, v = e
            # maximality: some endpoint is matched
            assert u in matched_nodes or v in matched_nodes
            # dominance: a matched edge at an endpoint outranks e
            adjacent_matched = [
                canonical_edge(x, result.partner[x])
                for x in (u, v)
                if x in matched_nodes
            ]
            assert any(order_key(m) > order_key(e) for m in adjacent_matched)
