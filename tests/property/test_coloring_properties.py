"""Property-based tests: the coloring algorithms on arbitrary graphs."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import greedy_edge_coloring, misra_gries_edge_coloring
from repro.core.edge_coloring import color_edges
from repro.core.dima2ed import strong_color_arcs
from repro.graphs.properties import max_degree
from repro.verify import (
    check_edge_coloring_complete,
    check_proper_edge_coloring,
    check_strong_arc_coloring,
)

from .strategies import graphs, symmetric_digraphs

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAlgorithm1Properties:
    @RELAXED
    @given(g=graphs(max_nodes=12), seed=st.integers(0, 2**16))
    def test_always_proper_and_complete(self, g, seed):
        result = color_edges(g, seed=seed)
        assert check_proper_edge_coloring(g, result.colors) == []
        assert check_edge_coloring_complete(g, result.colors) == []

    @RELAXED
    @given(g=graphs(max_nodes=12), seed=st.integers(0, 2**16))
    def test_proposition_3_color_bound(self, g, seed):
        result = color_edges(g, seed=seed)
        delta = max_degree(g)
        if delta:
            assert result.num_colors <= 2 * delta - 1

    @RELAXED
    @given(g=graphs(max_nodes=12), seed=st.integers(0, 2**16))
    def test_palette_prefix_property(self, g, seed):
        # Lowest-index selection means used colors form 0..k-1.
        result = color_edges(g, seed=seed)
        assert result.palette == list(range(result.num_colors))

    @RELAXED
    @given(g=graphs(max_nodes=10), seed=st.integers(0, 2**16))
    def test_endpoint_agreement_via_both_programs(self, g, seed):
        # check_consistency=True (default) raises on endpoint mismatch;
        # reaching here at all is the assertion.
        result = color_edges(g, seed=seed)
        assert len(result.colors) == g.num_edges


class TestDiMa2EdProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(d=symmetric_digraphs(max_nodes=7), seed=st.integers(0, 2**12))
    def test_always_valid_strong_coloring(self, d, seed):
        result = strong_color_arcs(d, seed=seed)
        assert check_strong_arc_coloring(d, result.colors) == []


class TestBaselineProperties:
    @RELAXED
    @given(g=graphs(max_nodes=14))
    def test_greedy_proper_with_bound(self, g):
        colors = greedy_edge_coloring(g)
        assert check_proper_edge_coloring(g, colors) == []
        delta = max_degree(g)
        if delta:
            assert len(set(colors.values())) <= 2 * delta - 1

    @RELAXED
    @given(g=graphs(max_nodes=14))
    def test_misra_gries_vizing_bound(self, g):
        colors = misra_gries_edge_coloring(g)
        assert check_proper_edge_coloring(g, colors) == []
        assert check_edge_coloring_complete(g, colors) == []
        delta = max_degree(g)
        assert len(set(colors.values())) <= delta + 1

    @RELAXED
    @given(g=graphs(max_nodes=12), seed=st.integers(0, 2**16))
    def test_distributed_weakly_dominated_by_vizing(self, g, seed):
        # Sanity relation between the two bounds: MG ≤ Δ+1 ≤ our 2Δ−1
        # whenever Δ ≥ 2.
        delta = max_degree(g)
        if delta < 2:
            return
        ours = color_edges(g, seed=seed).num_colors
        vizing = len(set(misra_gries_edge_coloring(g).values()))
        assert vizing <= delta + 1
        assert ours <= 2 * delta - 1
