"""Cross-validation of the coloring *verifiers* against networkx.

The verifiers are the project's independent second implementation of
the problem definitions; this module adds a third, built on networkx
primitives, and requires all pairwise agreement:

* proper edge coloring ⟺ proper vertex coloring of ``nx.line_graph`` —
  the textbook equivalence, computed by networkx's own line-graph
  construction rather than our endpoint grouping;
* the strong arc-coloring conflict model, re-implemented as a brute
  force over **all arc pairs** with networkx adjacency — independent of
  our checker's one-hop candidate enumeration.

Random colorings (valid and invalid alike) are drawn per graph, so the
oracles are compared on both verdicts, not just on algorithm outputs.
"""

import random

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dima2ed import strong_color_arcs
from repro.core.edge_coloring import color_edges
from repro.graphs.convert import to_networkx
from repro.verify import (
    check_proper_edge_coloring,
    check_strong_arc_coloring,
)

from .strategies import graphs, nonempty_graphs

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def nx_proper_edge_coloring(graph, colors) -> bool:
    """Properness via networkx: proper node coloring of the line graph."""
    line = nx.line_graph(to_networkx(graph))

    def color_of(edge):
        return colors[tuple(sorted(edge))]

    return all(color_of(a) != color_of(b) for a, b in line.edges)


def nx_strong_arc_coloring(digraph, colors) -> bool:
    """DESIGN.md's conflict model, brute-forced over all arc pairs."""
    underlying = to_networkx(digraph.to_undirected())

    def conflict(a, b):
        (u, v), (w, x) = a, b
        if {u, v} & {w, x}:
            return True  # shared endpoint (includes the reverse arc)
        if underlying.has_edge(w, v):
            return True  # transmitter w interferes at receiver v
        if underlying.has_edge(u, x):
            return True  # the symmetric pattern
        return False

    arcs = sorted(colors)
    for i, a in enumerate(arcs):
        for b in arcs[i + 1 :]:
            if colors[a] == colors[b] and conflict(a, b):
                return False
    return True


class TestEdgeColoringVerifierAgrees:
    @RELAXED
    @given(graphs(max_nodes=9), st.integers(min_value=0, max_value=2**31))
    def test_random_colorings_same_verdict(self, graph, seed):
        rng = random.Random(seed)
        colors = {edge: rng.randrange(4) for edge in graph.edges()}
        ours = not check_proper_edge_coloring(graph, colors)
        theirs = nx_proper_edge_coloring(graph, colors)
        assert ours == theirs

    @RELAXED
    @given(graphs(max_nodes=9), st.integers(min_value=0, max_value=2**31))
    def test_algorithm_output_passes_both(self, graph, seed):
        colors = color_edges(graph, seed=seed).colors
        assert not check_proper_edge_coloring(graph, colors)
        assert nx_proper_edge_coloring(graph, colors)

    @RELAXED
    @given(nonempty_graphs(max_nodes=9), st.integers(min_value=0, max_value=2**31))
    def test_corrupted_output_fails_both_when_adjacent(self, graph, seed):
        # Overwrite one edge's color with an adjacent edge's color; both
        # oracles must flip to invalid together (edges may be isolated,
        # in which case both must stay valid).
        colors = dict(color_edges(graph, seed=seed).colors)
        edges = sorted(colors)
        victim = edges[seed % len(edges)]
        donor = next(
            (e for e in edges if e != victim and set(e) & set(victim)), None
        )
        if donor is not None:
            colors[victim] = colors[donor]
        ours = not check_proper_edge_coloring(graph, colors)
        theirs = nx_proper_edge_coloring(graph, colors)
        assert ours == theirs
        if donor is not None:
            assert not ours


class TestStrongColoringVerifierAgrees:
    @RELAXED
    @given(graphs(max_nodes=6), st.integers(min_value=0, max_value=2**31))
    def test_random_colorings_same_verdict(self, graph, seed):
        digraph = graph.to_directed()
        rng = random.Random(seed)
        colors = {arc: rng.randrange(6) for arc in digraph.arcs()}
        ours = not check_strong_arc_coloring(digraph, colors, complete=False)
        theirs = nx_strong_arc_coloring(digraph, colors)
        assert ours == theirs

    @RELAXED
    @given(graphs(max_nodes=6), st.integers(min_value=0, max_value=2**31))
    def test_algorithm_output_passes_both(self, graph, seed):
        digraph = graph.to_directed()
        colors = strong_color_arcs(digraph, seed=seed).colors
        assert not check_strong_arc_coloring(digraph, colors)
        assert nx_strong_arc_coloring(digraph, colors)

    @RELAXED
    @given(nonempty_graphs(max_nodes=6), st.integers(min_value=0, max_value=2**31))
    def test_clashing_reverse_arcs_fail_both(self, graph, seed):
        # An arc and its reverse share both endpoints — forcing them to
        # one channel must trip both oracles.
        digraph = graph.to_directed()
        colors = dict(strong_color_arcs(digraph, seed=seed).colors)
        u, v = sorted(colors)[seed % len(colors)]
        colors[(v, u)] = colors[(u, v)]
        assert check_strong_arc_coloring(digraph, colors, complete=False)
        assert not nx_strong_arc_coloring(digraph, colors)
