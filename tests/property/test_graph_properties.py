"""Property-based tests: graph data structures and derived graphs."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.linegraph import line_graph
from repro.graphs.properties import connected_components, max_degree

from .strategies import graphs

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestGraphInvariants:
    @RELAXED
    @given(g=graphs())
    def test_handshake_lemma(self, g):
        assert sum(g.degree(u) for u in g) == 2 * g.num_edges

    @RELAXED
    @given(g=graphs())
    def test_neighbor_symmetry(self, g):
        for u in g:
            for v in g.neighbors(u):
                assert u in g.neighbors(v)

    @RELAXED
    @given(g=graphs())
    def test_edges_are_canonical_and_unique(self, g):
        edges = list(g.edges())
        assert len(edges) == len(set(edges))
        assert all(u < v for u, v in edges)

    @RELAXED
    @given(g=graphs())
    def test_copy_equals_original(self, g):
        assert g.copy() == g

    @RELAXED
    @given(g=graphs())
    def test_relabel_preserves_shape(self, g):
        h, mapping = g.relabeled()
        assert h.num_nodes == g.num_nodes
        assert h.num_edges == g.num_edges
        assert sorted(h.degree(mapping[u]) for u in g) == sorted(
            g.degree(u) for u in g
        )

    @RELAXED
    @given(g=graphs())
    def test_components_partition_nodes(self, g):
        comps = connected_components(g)
        seen = [u for comp in comps for u in comp]
        assert sorted(seen) == sorted(g.nodes())

    @RELAXED
    @given(g=graphs())
    def test_directed_roundtrip(self, g):
        assert g.to_directed().to_undirected() == g

    @RELAXED
    @given(g=graphs())
    def test_symmetric_closure_arc_count(self, g):
        assert g.to_directed().num_arcs == 2 * g.num_edges


class TestLineGraphInvariants:
    @RELAXED
    @given(g=graphs(max_nodes=9))
    def test_line_graph_node_count(self, g):
        lg, _ = line_graph(g)
        assert lg.num_nodes == g.num_edges

    @RELAXED
    @given(g=graphs(max_nodes=9))
    def test_line_graph_edge_count_formula(self, g):
        # |E(L(G))| = sum_v C(deg(v), 2)
        lg, _ = line_graph(g)
        expected = sum(g.degree(v) * (g.degree(v) - 1) // 2 for v in g)
        assert lg.num_edges == expected

    @RELAXED
    @given(g=graphs(max_nodes=9))
    def test_line_graph_max_degree_bound(self, g):
        # deg_L(e) = deg(u) + deg(v) - 2 <= 2(Δ - 1)
        lg, _ = line_graph(g)
        if g.num_edges:
            assert max_degree(lg) <= 2 * (max_degree(g) - 1)
