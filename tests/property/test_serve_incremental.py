"""Property-based tests: served colorings stay proper under mutation.

The serving invariant is that after *every* mutation batch the session
holds a complete, proper coloring (strong for DiMa2Ed) of the current
graph — regardless of whether the batch took the incremental path or
fell back to a full rerun.  Properties drive sessions over three graph
families (random, ring-lattice small world, near-regular) with random
insert/delete sequences, and additionally check the incremental core
directly against arbitrary hypothesis graphs.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    erdos_renyi_avg_degree,
    random_regular,
    small_world,
)
from repro.serve.fuzzing import fuzz_serve
from repro.serve.incremental import (
    FallbackRequired,
    incremental_arc_colors,
    incremental_edge_colors,
)
from repro.core.edge_coloring import color_edges
from repro.core.dima2ed import strong_color_arcs
from repro.serve.session import ColoringSession, Mutation
from repro.verify import (
    check_edge_coloring_complete,
    check_proper_edge_coloring,
    check_strong_arc_coloring,
)

from .strategies import nonempty_graphs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

FAMILIES = {
    "er": lambda n, seed: erdos_renyi_avg_degree(n, 3.0, seed=seed),
    "ws": lambda n, seed: small_world(n, 4, 0.2, seed=seed),
    "regular": lambda n, seed: random_regular(n, 3, seed=seed),
}


def _assert_session_valid(s):
    if s.algorithm == "dima2ed":
        assert check_strong_arc_coloring(
            s.graph.to_directed(), s.colors, complete=True
        ) == []
    else:
        assert check_proper_edge_coloring(s.graph, s.colors) == []
        assert check_edge_coloring_complete(s.graph, s.colors) == []


def _mutation_sequence(rng, graph, steps):
    """Random insert/delete batches, simulated against a graph copy."""
    sim = graph.copy()
    batches = []
    for _ in range(steps):
        batch = []
        for _ in range(rng.randrange(1, 4)):
            nodes = sim.nodes()
            if rng.random() < 0.6 or sim.num_edges == 0:
                u, v = rng.sample(nodes, 2)
                if not sim.has_edge(u, v):
                    sim.add_edge(u, v)
                    batch.append(Mutation("add_edge", u, v))
            else:
                u, v = rng.choice(sim.edge_list())
                sim.remove_edge(u, v)
                batch.append(Mutation("remove_edge", u, v))
        if batch:
            batches.append(batch)
    return batches


class TestServedColoringsStayProper:
    @RELAXED
    @given(
        family=st.sampled_from(sorted(FAMILIES)),
        algorithm=st.sampled_from(["alg1", "dima2ed"]),
        seed=st.integers(0, 2**16),
    )
    def test_proper_after_every_batch(self, family, algorithm, seed):
        g = FAMILIES[family](14, seed % 97)
        session = ColoringSession("p", algorithm=algorithm, seed=seed)
        session.load_edges(g.edge_list(), g.num_nodes)
        _assert_session_valid(session)
        rng = random.Random(seed)
        for batch in _mutation_sequence(rng, g, steps=4):
            out = session.apply(batch)
            # Server-side verification healed anything it caught; the
            # session must end every batch valid regardless of path.
            assert out.incremental or out.fallback or True
            _assert_session_valid(session)

    @RELAXED
    @given(
        algorithm=st.sampled_from(["alg1", "dima2ed"]),
        seed=st.integers(0, 2**16),
    )
    def test_fallback_counter_matches_outcomes(self, algorithm, seed):
        g = erdos_renyi_avg_degree(12, 3.0, seed=seed % 89)
        session = ColoringSession("c", algorithm=algorithm, seed=seed)
        session.load_edges(g.edge_list(), g.num_nodes)
        rng = random.Random(seed + 1)
        fallbacks = 0
        for batch in _mutation_sequence(rng, g, steps=3):
            out = session.apply(batch)
            fallbacks += 1 if out.fallback else 0
        assert session.stats["fallback_batches"] == fallbacks
        assert session.stats["batches"] == session.batches


class TestIncrementalCoreProperties:
    @RELAXED
    @given(
        g=nonempty_graphs(max_nodes=10),
        seed=st.integers(0, 2**16),
    )
    def test_edge_insertion_merge_always_proper(self, g, seed):
        nodes = g.nodes()
        pair = next(
            (
                (u, v)
                for u in nodes
                for v in nodes
                if u < v and not g.has_edge(u, v)
            ),
            None,
        )
        if pair is None:
            return  # complete graph: nothing to insert
        colors = dict(color_edges(g, seed=seed).colors)
        g.add_edge(*pair)
        try:
            out = incremental_edge_colors(g, colors, [pair], seed=seed)
        except FallbackRequired:
            return  # legal outcome; session would rerun from scratch
        colors.update(out.colors)
        assert check_proper_edge_coloring(g, colors) == []
        assert check_edge_coloring_complete(g, colors) == []

    @RELAXED
    @given(
        g=nonempty_graphs(max_nodes=8),
        seed=st.integers(0, 2**16),
    )
    def test_arc_insertion_merge_always_strong(self, g, seed):
        nodes = g.nodes()
        pair = next(
            (
                (u, v)
                for u in nodes
                for v in nodes
                if u < v and not g.has_edge(u, v)
            ),
            None,
        )
        if pair is None:
            return
        colors = dict(strong_color_arcs(g.to_directed(), seed=seed).colors)
        g.add_edge(*pair)
        try:
            out = incremental_arc_colors(g, colors, [pair], seed=seed)
        except FallbackRequired:
            return
        merged = dict(colors)
        merged.update(out.colors)
        violations = check_strong_arc_coloring(
            g.to_directed(), merged, complete=True
        )
        # The incremental core may legitimately miss distance-2 pairs
        # joined only outside the conflict subgraph; the session layer
        # verifies and falls back.  What must NEVER happen silently is
        # an incomplete merge.
        missing = [v for v in violations if "uncolored" in v]
        assert missing == []


class TestServeFuzzTier:
    def test_fixed_seed_fuzz_meets_acceptance_bars(self):
        result = fuzz_serve(max_iterations=6, seed=1234)
        assert result.violations == []
        assert result.single_insert_attempts > 0
        assert result.single_insert_hit_ratio >= 0.9
        assert result.batches > 0
        summary = result.summary()
        assert "hit ratio" in summary
