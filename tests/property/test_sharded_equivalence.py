"""Bit-identity of the sharded tier against the in-memory kernels.

The sharded tier (:mod:`repro.runtime.sharded`) runs the vectorized
palette-plane kernels hash-partitioned over memmapped CSR shards — the
same per-node MT19937 streams, routed per shard, with explicit
cross-shard exchange metering.  Nothing about the partitioning may leak
into the algorithm: for every family, seed, shard count and strategy,
the coloring, round/superstep counts and the shared metric counters
must match the batched/vectorized tiers exactly.  The shard-only
metrics (``shard_*``, ``cross_shard_bytes``) are additive extras — the
byte meter is deterministic and asserted as such; the wall-clock and
RSS fields are not compared.

Also pinned here: the memmap shard store round-trips any CSR exactly,
checkpoint/restart on the sharded engine is invisible (kill + restore
produces the uninterrupted run), and the differential harness reports
the tier as *skipped*, never silently dropped, where no spill directory
is available.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dima2ed import strong_color_arcs
from repro.core.edge_coloring import color_edges
from repro.core.sharded import Alg1ShardKernel, DiMa2EdShardKernel
from repro.core.vectorized import Alg1VecKernel, DiMa2EdVecKernel
from repro.graphs.generators import (
    erdos_renyi_avg_degree,
    scale_free,
    small_world,
    star_graph,
)
from repro.graphs.shards import ShardSet, write_graph_shards, write_shards
from repro.resilience import Checkpointer, CheckpointStore, resume_engine
from repro.runtime.engine import BatchedEngine
from repro.runtime.sharded import ShardedEngine
from repro.verify.differential import available_tiers, diff_tiers

RELAXED = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: to_dict fields that are wall-clock or host-dependent on the sharded
#: tier (everything else must be deterministic and tier-identical).
_NONDET = ("shard_exchange_seconds", "shard_peak_rss_kb")

FAMILIES = {
    "er": lambda seed: erdos_renyi_avg_degree(48, 5.0, seed=seed),
    "scale-free": lambda seed: scale_free(48, 3, seed=seed),
    "small-world": lambda seed: small_world(48, 4, 0.2, seed=seed),
    "star": lambda seed: star_graph(30),
}


def _stable(metrics_dict):
    return {k: v for k, v in metrics_dict.items() if k not in _NONDET}


@st.composite
def family_graphs(draw, max_nodes: int = 40):
    n = draw(st.integers(min_value=4, max_value=max_nodes))
    gseed = draw(st.integers(min_value=0, max_value=2**16))
    family = draw(st.sampled_from(["er", "sf", "sw"]))
    if family == "er":
        return erdos_renyi_avg_degree(n, min(4.0, n - 1), seed=gseed)
    if family == "sf":
        return scale_free(n, min(2, n - 1), seed=gseed)
    k = min(4, n - 1 - ((n - 1) % 2))
    return small_world(n, max(2, k), 0.2, seed=gseed)


class TestShardStoreRoundTrip:
    @RELAXED
    @given(
        graph=family_graphs(),
        num_shards=st.integers(min_value=1, max_value=6),
    )
    def test_any_csr_round_trips(self, graph, num_shards):
        indptr, indices = graph.to_csr()
        with tempfile.TemporaryDirectory() as tmp:
            ss = write_shards(indptr, indices, Path(tmp) / "s", num_shards)
            rt_indptr, rt_indices = ss.assemble_csr()
            assert (rt_indptr == indptr).all()
            assert (rt_indices == indices).all()
            # Reopen from disk: the manifest alone must reconstruct it.
            again = ShardSet(Path(tmp) / "s")
            rt_indptr, rt_indices = again.assemble_csr()
            assert (rt_indptr == indptr).all()
            assert (rt_indices == indices).all()


class TestWrapperEquivalence:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("shards", [1, 3])
    def test_alg1_sharded_bit_identical(self, family, shards):
        g = FAMILIES[family](7)
        batched = color_edges(g, seed=7, compute="batched")
        sharded = color_edges(g, seed=7, compute="sharded", shards=shards)
        assert sharded.colors == batched.colors
        assert sharded.rounds == batched.rounds
        assert sharded.supersteps == batched.supersteps
        assert sharded.metrics.as_dict() == batched.metrics.as_dict()
        assert sharded.palette == batched.palette
        assert sharded.metrics.shard_workers == shards
        assert sharded.metrics.shard_peak_rss_kb > 0
        if shards > 1:
            assert sharded.metrics.cross_shard_bytes > 0
        else:
            assert sharded.metrics.cross_shard_bytes == 0

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("shards", [1, 3])
    def test_dima2ed_sharded_bit_identical(self, family, shards):
        d = FAMILIES[family](5).to_directed()
        batched = strong_color_arcs(d, seed=5, compute="batched")
        sharded = strong_color_arcs(d, seed=5, compute="sharded", shards=shards)
        assert sharded.colors == batched.colors
        assert sharded.rounds == batched.rounds
        assert sharded.supersteps == batched.supersteps
        assert sharded.metrics.as_dict() == batched.metrics.as_dict()
        assert sharded.metrics.shard_workers == shards

    def test_cross_shard_bytes_deterministic(self):
        g = FAMILIES["er"](11)
        a = color_edges(g, seed=11, compute="sharded", shards=3)
        b = color_edges(g, seed=11, compute="sharded", shards=3)
        assert a.metrics.cross_shard_bytes == b.metrics.cross_shard_bytes
        assert _stable(a.metrics.to_dict()) == _stable(b.metrics.to_dict())

    def test_shard_fields_absent_on_other_tiers(self):
        g = FAMILIES["er"](11)
        batched = color_edges(g, seed=11, compute="batched")
        assert "shard_workers" not in batched.metrics.to_dict()
        assert "cross_shard_bytes" not in batched.metrics.to_dict()


class TestShardedCheckpointRestart:
    @RELAXED
    @given(
        graph=family_graphs(max_nodes=28),
        seed=st.integers(min_value=0, max_value=2**16),
        kill_at=st.floats(min_value=0.05, max_value=0.95),
        every=st.integers(min_value=1, max_value=9),
        num_shards=st.integers(min_value=1, max_value=4),
    )
    def test_alg1_restore_is_bit_identical(
        self, graph, seed, kill_at, every, num_shards
    ):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            shardset = write_graph_shards(graph, tmp / "shards", num_shards)

            base_kernel = Alg1VecKernel()
            base = BatchedEngine(graph, base_kernel, seed=seed).run()
            assert base.completed

            store = CheckpointStore(keep=2)
            kill = max(1, int(kill_at * base.supersteps))
            engine = ShardedEngine(
                shardset,
                Alg1ShardKernel(),
                num_shards=num_shards,
                spill_dir=tmp / "spill-killed",
                seed=seed,
                max_supersteps=kill,
                checkpointer=Checkpointer(every, store),
            )
            killed = engine.run()
            if killed.completed:
                return
            checkpoint = store.latest()
            assert checkpoint is not None
            assert checkpoint.kind == "sharded"
            assert checkpoint.meta["num_shards"] == num_shards

            resumed_engine = resume_engine(
                checkpoint, shardset, spill_dir=tmp / "spill-resumed"
            )
            resumed = resumed_engine.run()
            assert resumed.completed
            assert resumed.supersteps == base.supersteps
            r = resumed_engine.kernel.assignment_arrays()
            b = base_kernel.assignment_arrays()
            assert all((x == y).all() for x, y in zip(r, b))
            assert resumed.metrics.as_dict() == base.metrics.as_dict()

    @RELAXED
    @given(
        graph=family_graphs(max_nodes=20),
        seed=st.integers(min_value=0, max_value=2**16),
        kill_at=st.floats(min_value=0.05, max_value=0.95),
        num_shards=st.integers(min_value=1, max_value=3),
    )
    def test_dima2ed_restore_is_bit_identical(
        self, graph, seed, kill_at, num_shards
    ):
        work = graph.to_directed()
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            shardset = write_graph_shards(work, tmp / "shards", num_shards)

            base_kernel = DiMa2EdVecKernel()
            base = BatchedEngine(work, base_kernel, seed=seed).run()
            assert base.completed

            store = CheckpointStore(keep=2)
            kill = max(1, int(kill_at * base.supersteps))
            engine = ShardedEngine(
                shardset,
                DiMa2EdShardKernel(),
                num_shards=num_shards,
                spill_dir=tmp / "spill-killed",
                seed=seed,
                max_supersteps=kill,
                checkpointer=Checkpointer(4, store),
            )
            killed = engine.run()
            if killed.completed:
                return
            checkpoint = store.latest()
            assert checkpoint is not None
            assert checkpoint.kind == "sharded"

            resumed_engine = resume_engine(
                checkpoint, shardset, spill_dir=tmp / "spill-resumed"
            )
            resumed = resumed_engine.run()
            assert resumed.completed
            assert resumed.supersteps == base.supersteps
            r = resumed_engine.kernel.assignment_arrays()
            b = base_kernel.assignment_arrays()
            assert all((x == y).all() for x, y in zip(r, b))
            assert resumed.metrics.as_dict() == base.metrics.as_dict()


class TestDifferentialIntegration:
    def test_sharded_tier_runs_in_diff_tiers(self):
        g = FAMILIES["er"](3)
        for algorithm in ("alg1", "dima2ed"):
            report = diff_tiers(
                g, algorithm=algorithm, seed=3, tiers=["batched", "sharded"]
            )
            assert report.ok, report.summary()
            assert "sharded" in report.runs

    def test_unavailable_sharded_is_skipped_not_dropped(self, monkeypatch):
        import repro.graphs.shards as shards_mod

        monkeypatch.setattr(shards_mod, "sharded_available", lambda spill_dir=None: False)
        runnable, skipped = available_tiers(["batched", "sharded"])
        assert runnable == ["batched"]
        assert "sharded" in skipped
        report = diff_tiers(
            FAMILIES["er"](4), seed=4, tiers=["batched", "sharded"]
        )
        assert report.ok
        assert "sharded" in report.skipped
        assert "sharded" not in report.runs
