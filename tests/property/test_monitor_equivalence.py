"""Property-based tests: invariant monitors have no observer effect.

Two laws, mirroring the PR 3 observability discipline:

1. A monitored run is bit-identical to the unmonitored run — monitors
   are read-only over program state, metrics and outboxes, so attaching
   them may slow a run down but never change it.
2. Real runs never violate the invariants: across random graphs, seeds
   and both algorithms, no monitor fires.  (That the monitors *can*
   fire is pinned by the seeded-violation unit tests.)
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dima2ed import strong_color_arcs
from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.verify import default_monitors

from .strategies import graphs, symmetric_digraphs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestNoObserverEffect:
    @RELAXED
    @given(graphs(max_nodes=10), st.integers(min_value=0, max_value=2**31))
    def test_edge_coloring_identical(self, graph, seed):
        bare = color_edges(graph, seed=seed)
        monitored = color_edges(graph, seed=seed, monitors=default_monitors())
        assert monitored.colors == bare.colors
        assert monitored.rounds == bare.rounds
        assert monitored.supersteps == bare.supersteps
        assert monitored.metrics.to_dict() == bare.metrics.to_dict()

    @RELAXED
    @given(symmetric_digraphs(max_nodes=7), st.integers(min_value=0, max_value=2**31))
    def test_dima2ed_identical(self, digraph, seed):
        bare = strong_color_arcs(digraph, seed=seed)
        monitored = strong_color_arcs(
            digraph, seed=seed, monitors=default_monitors()
        )
        assert monitored.colors == bare.colors
        assert monitored.rounds == bare.rounds
        assert monitored.metrics.to_dict() == bare.metrics.to_dict()

    @RELAXED
    @given(graphs(max_nodes=9), st.integers(min_value=0, max_value=2**31))
    def test_recovery_mode_monitored(self, graph, seed):
        params = EdgeColoringParams(recovery=True)
        bare = color_edges(graph, seed=seed, params=params)
        monitored = color_edges(
            graph, seed=seed, params=params, monitors=default_monitors()
        )
        assert monitored.colors == bare.colors
        assert monitored.rounds == bare.rounds
