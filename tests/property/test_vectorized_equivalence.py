"""Bit-identity of the vectorized plane kernels against the batched core.

The vectorized kernels (:mod:`repro.core.vectorized`) re-derive both
algorithms yet again — fixed-width uint64 palette planes, whole-
population numpy supersteps, and a replayed RNG (:mod:`repro.core.
vecrng`) instead of per-node ``random.Random`` objects.  Nothing in
them shares state with the batched core, so equality here extends the
existing chain (per-node == batched, pinned by
``test_batched_equivalence.py``) one more link: for every family, seed
and strategy combination, colorings, round/superstep counts and the
full metrics dict must match exactly.

The numba backend is the same kernel family once more with the inner
loops njit-compiled; its tests run the *interpreted* fallback (numba is
not a dependency of this repo) by forcing the backend probe, which
executes the identical Python source the JIT would compile.
"""

import hashlib

import pytest

import repro.core.kernels_numba as kernels_numba
from repro.core.dima2ed import StrongColoringParams, strong_color_arcs
from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.graphs.generators import (
    erdos_renyi_avg_degree,
    random_regular,
    scale_free,
    small_world,
)

FAMILIES = {
    "er": lambda seed: erdos_renyi_avg_degree(48, 5.0, seed=seed),
    "scale-free": lambda seed: scale_free(48, 3, seed=seed),
    "small-world": lambda seed: small_world(48, 4, 0.2, seed=seed),
    "regular": lambda seed: random_regular(48, 4, seed=seed),
}

SEEDS = (0, 1, 2)


def _digest(colors) -> str:
    return hashlib.sha256(repr(sorted(colors.items())).encode()).hexdigest()


def _assert_same(got, want):
    assert got.colors == want.colors
    assert _digest(got.colors) == _digest(want.colors)
    assert got.rounds == want.rounds
    assert got.supersteps == want.supersteps
    assert got.metrics.to_dict() == want.metrics.to_dict()


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_alg1_vectorized_bit_identical(family, seed):
    g = FAMILIES[family](seed)
    batched = color_edges(g, seed=seed, compute="batched")
    vectorized = color_edges(g, seed=seed, compute="vectorized")
    _assert_same(vectorized, batched)
    assert vectorized.palette == batched.palette


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_dima2ed_vectorized_bit_identical(family, seed):
    d = FAMILIES[family](seed).to_directed()
    batched = strong_color_arcs(d, seed=seed, compute="batched")
    vectorized = strong_color_arcs(d, seed=seed, compute="vectorized")
    _assert_same(vectorized, batched)


@pytest.mark.parametrize("color_strategy", ["lowest", "random_window"])
@pytest.mark.parametrize("responder_strategy", ["random", "lowest_color"])
def test_alg1_strategy_combinations(color_strategy, responder_strategy):
    g = FAMILIES["er"](7)
    params = EdgeColoringParams(
        color_strategy=color_strategy, responder_strategy=responder_strategy
    )
    batched = color_edges(g, seed=7, params=params, compute="batched")
    vectorized = color_edges(g, seed=7, params=params, compute="vectorized")
    _assert_same(vectorized, batched)


@pytest.mark.parametrize("channel_strategy", ["random_window", "first_fit"])
def test_dima2ed_channel_strategies(channel_strategy):
    d = FAMILIES["er"](5).to_directed()
    params = StrongColoringParams(channel_strategy=channel_strategy)
    batched = strong_color_arcs(d, seed=5, params=params, compute="batched")
    vectorized = strong_color_arcs(d, seed=5, params=params, compute="vectorized")
    _assert_same(vectorized, batched)


class TestNumbaInterpretedPath:
    """compute="numba" with the backend probe forced on runs the numba
    kernel's functions as plain Python (the ``_njit_or_identity``
    fallback) — the exact source the JIT would compile."""

    @pytest.fixture
    def force_numba_backend(self, monkeypatch):
        monkeypatch.setattr(kernels_numba, "numba_available", lambda: True)

    @pytest.mark.parametrize("family", ["er", "scale-free"])
    def test_alg1_matches_vectorized(self, force_numba_backend, family):
        g = FAMILIES[family](1)
        vectorized = color_edges(g, seed=1, compute="vectorized")
        numba = color_edges(g, seed=1, compute="numba")
        _assert_same(numba, vectorized)

    @pytest.mark.parametrize("color_strategy", ["lowest", "random_window"])
    @pytest.mark.parametrize("responder_strategy", ["random", "lowest_color"])
    def test_alg1_strategies_match(
        self, force_numba_backend, color_strategy, responder_strategy
    ):
        g = FAMILIES["regular"](3)
        params = EdgeColoringParams(
            color_strategy=color_strategy, responder_strategy=responder_strategy
        )
        vectorized = color_edges(g, seed=3, params=params, compute="vectorized")
        numba = color_edges(g, seed=3, params=params, compute="numba")
        _assert_same(numba, vectorized)

    @pytest.mark.parametrize("family", ["er", "small-world"])
    def test_dima2ed_matches_vectorized(self, force_numba_backend, family):
        d = FAMILIES[family](2).to_directed()
        vectorized = strong_color_arcs(d, seed=2, compute="vectorized")
        numba = strong_color_arcs(d, seed=2, compute="numba")
        _assert_same(numba, vectorized)

    @pytest.mark.parametrize("channel_strategy", ["random_window", "first_fit"])
    def test_dima2ed_strategies_match(self, force_numba_backend, channel_strategy):
        d = FAMILIES["regular"](4).to_directed()
        params = StrongColoringParams(channel_strategy=channel_strategy)
        vectorized = strong_color_arcs(d, seed=4, params=params, compute="vectorized")
        numba = strong_color_arcs(d, seed=4, params=params, compute="numba")
        _assert_same(numba, vectorized)

    def test_dima2ed_without_numba_falls_back_silently(self, monkeypatch):
        # With numba genuinely unavailable, compute="numba" routes to the
        # vectorized kernel — same answer, no error, no warning.
        monkeypatch.setattr(kernels_numba, "numba_available", lambda: False)
        d = FAMILIES["er"](6).to_directed()
        vectorized = strong_color_arcs(d, seed=6, compute="vectorized")
        fallback = strong_color_arcs(d, seed=6, compute="numba")
        _assert_same(fallback, vectorized)
