#!/usr/bin/env python
"""Sharded-tier scaling benchmark: memory-bounded runs on million-node graphs.

Sweeps Erdős–Rényi graphs through the sharded execution tier
(``compute="sharded"`` — :mod:`repro.runtime.sharded`) across worker
counts K, measuring the three costs that tier exists to expose:

* **wall time** — the routing/memmap overhead the disk-backed tier pays
  over the resident vectorized kernels;
* **cross-shard traffic** — ``cross_shard_bytes``, the wire bytes K
  communicating processes would exchange, plus the wall share spent in
  exchange (``shard_exchange_seconds``);
* **peak RSS** — the point of the tier.  Each measurement runs in a
  forked child whose only work is the sharded run, so the child's RSS
  high-water mark *is* the per-worker footprint; for the gated
  workloads it must stay below ``RSS_CEILING_FRACTION`` of the
  whole-population MT pool (``n x 624 x 4`` bytes — the dominant
  resident block of the in-memory tiers) or the benchmark fails.

Graphs are generated CSR-natively (numpy only — no Python ``Graph``
object ever holds a million nodes) and sharded to disk in the parent;
children open the shard directory cold, exactly as a real out-of-core
run would.  A small-n digest cross-check against the batched tier runs
first, so every benchmark invocation doubles as a correctness gate.

Results land in ``BENCH_shards.json`` at the repo root by default.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke    # CI subset
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke \
        --out /tmp/shards.json                                         # artifact
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import multiprocessing as mp
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from benchlib import peak_rss_kb  # noqa: E402

from repro.core.dima2ed import strong_color_arcs  # noqa: E402
from repro.core.edge_coloring import color_edges, default_round_budget  # noqa: E402
from repro.core.sharded import Alg1ShardKernel, DiMa2EdShardKernel  # noqa: E402
from repro.core.states import PHASES_PER_ROUND  # noqa: E402
from repro.graphs.generators import erdos_renyi_avg_degree  # noqa: E402
from repro.graphs.shards import ShardSet, write_shards  # noqa: E402
from repro.runtime.sharded import ShardedEngine  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_shards.json"

#: Bytes of MT19937 pool state per node — the dominant resident block
#: of the in-memory tiers and the denominator of the RSS gate.
_MT_BYTES_PER_NODE = 624 * 4

#: A gated child's peak RSS must stay below this fraction of the
#: whole-population MT pool.  At n=10^6 the pool is ~2.4 GiB and a
#: 4-shard run carries ~1/4 of it plus planes and interpreter overhead,
#: so 0.6 fails only when the tier has genuinely lost its memory bound
#: (e.g. a whole-population array snuck back in).
RSS_CEILING_FRACTION = 0.6

GRAPH_SEED = 1
RUN_SEED = 0

#: name -> spec.  ``smoke`` entries form the CI subset.  ``gate_rss``
#: marks the workloads large enough that the MT pool dwarfs interpreter
#: baseline RSS, where the ceiling assertion is meaningful.
WORKLOADS: Dict[str, Dict[str, Any]] = {
    "alg1-er-n100k-d8": dict(
        kind="alg1", n=100_000, deg=8.0, shard_counts=(1, 4), smoke=False, gate_rss=False
    ),
    "alg1-er-n1m-d8": dict(
        kind="alg1", n=1_000_000, deg=8.0, shard_counts=(1, 2, 4, 8), smoke=True,
        smoke_shard_counts=(4,), gate_rss=True,
    ),
    "dima2ed-er-n1m-d6": dict(
        kind="dima2ed", n=1_000_000, deg=6.0, shard_counts=(1, 4), smoke=True,
        smoke_shard_counts=(4,), gate_rss=True,
    ),
}


def er_csr(n: int, avg_deg: float, seed: int):
    """A symmetric ER-ish CSR built numpy-natively (no ``Graph``).

    Samples ~n*d/2 unordered pairs, drops self-loops, dedupes, and
    symmetrizes into a row-sorted CSR.  The distribution is the usual
    G(n, m)-style approximation — fine for a scaling benchmark; the
    exact-family correctness runs use the repo generators at small n.
    """
    rng = np.random.default_rng(seed)
    m = int(n * avg_deg / 2)
    u = rng.integers(0, n, size=int(m * 1.2) + 16, dtype=np.int64)
    v = rng.integers(0, n, size=int(m * 1.2) + 16, dtype=np.int64)
    keep = u != v
    u, v = u[keep], v[keep]
    a, b = np.minimum(u, v), np.maximum(u, v)
    key = np.unique(a * n + b)[:m]
    a, b = key // n, key % n
    src = np.concatenate([a, b])
    dst = np.concatenate([b, a])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(np.bincount(src, minlength=n))
    return indptr, np.ascontiguousarray(dst)


def _run_sharded(shard_dir: Path, spill_dir: Path, kind: str, delta: int):
    kernel = Alg1ShardKernel() if kind == "alg1" else DiMa2EdShardKernel()
    shardset = ShardSet(shard_dir)
    engine = ShardedEngine(
        shardset,
        kernel,
        num_shards=shardset.num_shards,
        spill_dir=spill_dir,
        seed=RUN_SEED,
        max_supersteps=default_round_budget(delta) * PHASES_PER_ROUND,
    )
    t0 = time.perf_counter()
    run = engine.run()
    wall = time.perf_counter() - t0
    if not run.completed:
        raise RuntimeError(
            f"sharded {kind} run failed to converge in {run.supersteps} supersteps"
        )
    m = run.metrics
    return {
        "wall_s": round(wall, 3),
        "supersteps": run.supersteps,
        "rounds": run.supersteps // PHASES_PER_ROUND,
        "shard_workers": m.shard_workers,
        "cross_shard_bytes": m.cross_shard_bytes,
        "shard_exchange_seconds": round(m.shard_exchange_seconds, 3),
        "messages_delivered": int(m.messages_delivered),
        "peak_rss_kb": peak_rss_kb(),
    }


def _measure(shard_dir: Path, kind: str, delta: int) -> Dict[str, Any]:
    """One sharded run in a forked child — the child's RSS high-water
    mark is the per-worker footprint the gate asserts on."""

    def _child(conn, spill):
        try:
            conn.send(("ok", _run_sharded(shard_dir, Path(spill), kind, delta)))
        except BaseException as exc:
            conn.send(("err", repr(exc)))
        finally:
            conn.close()

    with tempfile.TemporaryDirectory(prefix="repro-bench-spill-") as spill:
        if "fork" not in mp.get_all_start_methods():
            return _run_sharded(shard_dir, Path(spill), kind, delta)
        ctx = mp.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_child, args=(child, spill))
        proc.start()
        child.close()
        status, payload = parent.recv()
        proc.join()
    if status != "ok":
        raise RuntimeError(f"benchmark child failed ({kind}): {payload}")
    return payload


def _digest(colors) -> str:
    return hashlib.sha256(repr(sorted(colors.items())).encode()).hexdigest()[:16]


def correctness_gate() -> Dict[str, Any]:
    """Small-n digest cross-check: sharded == batched, both algorithms."""
    g = erdos_renyi_avg_degree(5_000, 6.0, seed=GRAPH_SEED)
    out: Dict[str, Any] = {}
    batched = color_edges(g, seed=RUN_SEED, compute="batched")
    sharded = color_edges(g, seed=RUN_SEED, compute="sharded", shards=3)
    if (
        _digest(batched.colors) != _digest(sharded.colors)
        or batched.metrics.as_dict() != sharded.metrics.as_dict()
    ):
        raise RuntimeError("sharded tier diverged from batched on alg1 n=5000")
    out["alg1"] = {"digest": _digest(sharded.colors), "n": 5_000, "identical": True}
    d = g.to_directed()
    batched = strong_color_arcs(d, seed=RUN_SEED, compute="batched")
    sharded = strong_color_arcs(d, seed=RUN_SEED, compute="sharded", shards=3)
    if (
        _digest(batched.colors) != _digest(sharded.colors)
        or batched.metrics.as_dict() != sharded.metrics.as_dict()
    ):
        raise RuntimeError("sharded tier diverged from batched on dima2ed n=5000")
    out["dima2ed"] = {"digest": _digest(sharded.colors), "n": 5_000, "identical": True}
    return out


def run_sweep(smoke: bool, shards_override: Optional[Sequence[int]] = None) -> Dict[str, Any]:
    print("correctness gate (sharded vs batched, n=5000) ...", flush=True)
    gate = correctness_gate()
    print("correctness gate OK", flush=True)

    workloads: Dict[str, Any] = {}
    rss_failures = []
    for name, spec in WORKLOADS.items():
        if smoke and not spec["smoke"]:
            continue
        if shards_override:
            shard_counts = tuple(shards_override)
        elif smoke:
            shard_counts = spec.get("smoke_shard_counts", spec["shard_counts"])
        else:
            shard_counts = spec["shard_counts"]
        n = spec["n"]
        print(f"[{name}] generating CSR (n={n}) ...", flush=True)
        indptr, indices = er_csr(n, spec["deg"], GRAPH_SEED)
        delta = int(np.diff(indptr).max())
        mt_pool_bytes = n * _MT_BYTES_PER_NODE
        entry: Dict[str, Any] = {
            "kind": spec["kind"],
            "n": n,
            "edges": int(len(indices)) // 2,
            "delta": delta,
            "mt_pool_bytes": mt_pool_bytes,
            "rss_gated": bool(spec["gate_rss"]),
            "by_shards": {},
        }
        with tempfile.TemporaryDirectory(prefix="repro-bench-shards-") as tmp:
            for k in shard_counts:
                shard_dir = Path(tmp) / f"s{k}"
                write_shards(indptr, indices, shard_dir, k)
                # Drop the parent's references before forking so COW
                # pages don't ride into the child's RSS baseline.
                if k == shard_counts[-1]:
                    del indptr, indices
                    gc.collect()
                print(f"[{name}] shards={k} ...", flush=True)
                result = _measure(shard_dir, spec["kind"], delta)
                rss_bytes = result["peak_rss_kb"] * 1024
                result["rss_over_mt_pool"] = round(rss_bytes / mt_pool_bytes, 3)
                entry["by_shards"][str(k)] = result
                if spec["gate_rss"] and k >= 2:
                    ceiling = RSS_CEILING_FRACTION * mt_pool_bytes
                    ok = rss_bytes < ceiling
                    result["rss_within_ceiling"] = ok
                    if not ok:
                        rss_failures.append(
                            f"{name} shards={k}: peak RSS "
                            f"{rss_bytes / 2**20:.0f} MiB >= ceiling "
                            f"{ceiling / 2**20:.0f} MiB"
                        )
                print(
                    f"[{name}] shards={k} wall {result['wall_s']:.1f}s "
                    f"rss {result['peak_rss_kb'] / 1024:.0f} MiB "
                    f"({result['rss_over_mt_pool']:.2f}x MT pool) "
                    f"exchange {result['shard_exchange_seconds']:.1f}s "
                    f"cross {result['cross_shard_bytes'] / 2**20:.0f} MiB",
                    flush=True,
                )
        one = entry["by_shards"].get("1")
        if one is not None:
            for k, r in entry["by_shards"].items():
                r["wall_over_k1"] = round(r["wall_s"] / one["wall_s"], 3) if one["wall_s"] else None
        workloads[name] = entry
    report = {
        "schema": 1,
        "generated_by": "benchmarks/bench_shard_scaling.py",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rss_ceiling_fraction": RSS_CEILING_FRACTION,
        "units": {"wall_s": "seconds", "peak_rss_kb": "KiB", "cross_shard_bytes": "bytes"},
        "correctness": gate,
        "workloads": workloads,
        "rss_failures": rss_failures,
    }
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="run only the CI subset of workloads"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="where to write the JSON report"
    )
    parser.add_argument(
        "--shards",
        default=None,
        metavar="K[,K...]",
        help="override every workload's shard-count sweep (e.g. 4 or 1,4,8)",
    )
    args = parser.parse_args(argv)

    shards_override = None
    if args.shards is not None:
        try:
            shards_override = [int(part) for part in str(args.shards).split(",")]
        except ValueError:
            parser.error(f"--shards expects integers, got {args.shards!r}")
        if any(k < 1 for k in shards_override):
            parser.error("--shards values must be >= 1")

    report = run_sweep(smoke=args.smoke, shards_override=shards_override)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if report["rss_failures"]:
        for line in report["rss_failures"]:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
