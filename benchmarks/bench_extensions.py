"""Bench EXT — the framework-extension algorithms.

Times maximal matching, vertex cover, weighted matching, and the
(Δ+1) vertex coloring on shared workloads, and regenerates the
paradigm-scaling comparison table (Θ(Δ) pairing vs O(log n)
trial-and-confirm).
"""

import random

import pytest

from conftest import save_report
from repro.core.matching import find_maximal_matching
from repro.core.vertex_coloring import color_vertices
from repro.core.vertex_cover import find_vertex_cover
from repro.core.weighted_matching import find_weighted_matching
from repro.experiments import extensions_compare
from repro.graphs.generators import erdos_renyi_avg_degree

GRAPH = erdos_renyi_avg_degree(200, 8.0, seed=2012)
_rng = random.Random(2012)
WEIGHTS = {e: _rng.uniform(0.5, 5.0) for e in GRAPH.edges()}


def test_maximal_matching(benchmark):
    result = benchmark.pedantic(
        lambda: find_maximal_matching(GRAPH, seed=2012), rounds=3, iterations=1
    )
    benchmark.extra_info.update(size=result.size, rounds=result.rounds)


def test_vertex_cover(benchmark):
    result = benchmark.pedantic(
        lambda: find_vertex_cover(GRAPH, seed=2012), rounds=3, iterations=1
    )
    benchmark.extra_info.update(cover=result.size, bound=result.approximation_bound)


def test_weighted_matching(benchmark):
    result = benchmark.pedantic(
        lambda: find_weighted_matching(GRAPH, WEIGHTS, seed=2012),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(
        size=result.size,
        weight=round(result.total_weight, 1),
        supersteps=result.supersteps,
    )


def test_vertex_coloring(benchmark):
    result = benchmark.pedantic(
        lambda: color_vertices(GRAPH, seed=2012), rounds=3, iterations=1
    )
    benchmark.extra_info.update(colors=result.num_colors, rounds=result.rounds)


def test_extensions_table(benchmark, report_dir):
    rows = benchmark.pedantic(
        lambda: extensions_compare.run_sweep(
            cells=((80, 4.0), (80, 12.0)), count=2, base_seed=2012
        ),
        rounds=1,
        iterations=1,
    )
    save_report(report_dir, "extensions_compare", extensions_compare.render(rows))
    low, high = rows
    # The paradigm split: pairing scales with Δ, trial-and-confirm doesn't.
    assert high.edge_coloring_rounds > low.edge_coloring_rounds
    assert high.vertex_coloring_rounds < low.vertex_coloring_rounds * 2.5
