"""Bench UDG — DiMa2Ed channel assignment on unit-disk radio networks.

Times the density sweep and regenerates the spectrum-overhead table.
Shape assertions: rounds track Δ; the distributed assignment stays
within 2x of the centralized greedy planner's channel count; the dense
regime completes (the pre-backoff implementation livelocked here).
"""

import pytest

from conftest import save_report
from repro.core.dima2ed import strong_color_arcs
from repro.experiments import udg_channels
from repro.graphs.generators import unit_disk


@pytest.mark.parametrize("radius", [0.18, 0.25, 0.32], ids=lambda r: f"r{r:g}")
def test_udg_density(benchmark, radius):
    digraph = unit_disk(40, radius, seed=2012).to_directed()
    result = benchmark.pedantic(
        lambda: strong_color_arcs(digraph, seed=2012), rounds=2, iterations=1
    )
    benchmark.extra_info.update(
        delta=result.delta,
        rounds=result.rounds,
        channels=result.num_colors,
    )


def test_udg_table(benchmark, report_dir):
    rows = benchmark.pedantic(
        lambda: udg_channels.run(n=35, radii=(0.2, 0.3), count=3, base_seed=2012),
        rounds=1,
        iterations=1,
    )
    save_report(report_dir, "udg_channels", udg_channels.render(rows))
    assert all(r.spectrum_overhead < 2.5 for r in rows)
    sparse, dense = rows
    assert dense.mean_rounds > sparse.mean_rounds
