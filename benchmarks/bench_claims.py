"""Bench CLAIMS — the paper's §V headline constants.

One timed run regenerating the claim-by-claim verdict: rounds/Δ ≈ 2 for
Algorithm 1, rounds/Δ constant for DiMa2Ed, colors ≤ Δ+1 typical,
never 2Δ−1.
"""

from conftest import save_report
from repro.experiments import claims


def test_claims_headline(benchmark, report_dir):
    """Regenerate the headline-claims report (scaled grids)."""
    report = benchmark.pedantic(
        lambda: claims.run(scale=0.04, base_seed=2012), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {k: v for k, v in report.as_dict().items() if not isinstance(v, bool)}
    )
    save_report(report_dir, "claims_headline", report.render())

    # Claim 1: Algorithm 1 terminates in ≈ 2Δ rounds.
    assert 1.0 < report.edge_rounds_per_delta_mean < 4.0
    # Claim 3: colors ≤ Δ+2 in practice, worst case never reached.
    assert report.practical_fraction == 1.0
    assert not report.worst_case_bound_hit
