"""Bench FIG6 — DiMa2Ed on directed Erdős–Rényi graphs (paper §IV-D, Fig 6).

Expected shape: rounds scale with Δ, not n (the 200- vs 400-node cells
at equal average degree land together); the paper reports the constant
as ≈ 4Δ, our implementation's measured constant is recorded in
EXPERIMENTS.md.
"""

import pytest

from conftest import save_report
from repro.core.dima2ed import strong_color_arcs
from repro.experiments import fig6_dima2ed
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.verify import assert_strong_arc_coloring

CELLS = [(n, deg) for n in fig6_dima2ed.SIZES for deg in fig6_dima2ed.DEGREES]


@pytest.mark.parametrize("n,deg", CELLS, ids=[f"n{n}-deg{d:g}" for n, d in CELLS])
def test_fig6_cell(benchmark, n, deg):
    """Time one DiMa2Ed run on one representative cell digraph."""
    digraph = erdos_renyi_avg_degree(n, deg, seed=2012).to_directed()
    result = benchmark.pedantic(
        lambda: strong_color_arcs(digraph, seed=2012), rounds=2, iterations=1
    )
    assert_strong_arc_coloring(digraph, result.colors)
    benchmark.extra_info.update(
        delta=result.delta,
        rounds=result.rounds,
        rounds_per_delta=round(result.rounds_per_delta, 2),
        channels=result.num_colors,
    )


def test_fig6_series(benchmark, report_dir):
    """Regenerate the figure series at 1 replicate per cell."""

    def run():
        return fig6_dima2ed.run(scale=0.02, base_seed=2012)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    fit = report.rounds_fit()
    benchmark.extra_info.update(
        runs=len(report.records),
        slope_rounds_vs_delta=round(fit.slope, 2),
        mean_rounds_per_delta=round(
            sum(r.rounds_per_delta for r in report.records) / len(report.records), 2
        ),
    )
    save_report(report_dir, "fig6_dima2ed", report.render())
    # Shape: linear in Δ with a constant comfortably below the budget.
    assert fit.slope > 1.0
