#!/usr/bin/env python
"""Invariant-monitor overhead benchmark: what does checking a run cost?

Times Algorithm 1 on an Erdős–Rényi graph under four configurations:

* ``baseline-batched`` — default ``color_edges`` (batched kernel, the
  production path; monitors disabled);
* ``baseline-general`` — the general per-node loop without monitors
  (the reference the monitored run is compared against);
* ``monitors-disabled`` — the general loop with ``monitors=None``
  passed explicitly; identical code path to ``baseline-general``, so
  its ratio isolates the cost of the engine's monitor hook plumbing
  (an empty-tuple check per superstep).  **Gate: ≤ 1.05×.**
* ``monitored`` — all four default monitors attached (transition
  legality, round invariants, palette bound, conservation); reported
  for information, not gated — monitoring is a debugging mode.

The disabled-overhead gate operationalizes the acceptance criterion
"invariant monitors add < 5% wall-clock overhead when disabled": an
unmonitored run keeps the fast/batched paths (asserted here via
``batched_eligible``/digest equality) and the general loop's hook
costs nothing measurable when no monitor is attached.

Usage::

    PYTHONPATH=src python benchmarks/bench_check_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_check_overhead.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.edge_coloring import color_edges  # noqa: E402
from repro.graphs.generators import erdos_renyi_avg_degree  # noqa: E402
from repro.verify import default_monitors  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "out" / "BENCH_check_overhead.json"
GRAPH_SEED = 1
RUN_SEED = 0
DISABLED_GATE = 1.05

CONFIGS = ("baseline-batched", "baseline-general", "monitors-disabled", "monitored")


def _kwargs(config: str) -> Dict[str, Any]:
    if config == "baseline-batched":
        return {}
    if config == "baseline-general":
        return dict(fastpath=False, compute="pernode")
    if config == "monitors-disabled":
        return dict(fastpath=False, compute="pernode", monitors=None)
    if config == "monitored":
        return dict(monitors=default_monitors())
    raise ValueError(f"unknown config {config}")


def _run_config(config: str, n: int, deg: float, repeats: int) -> Dict[str, Any]:
    g = erdos_renyi_avg_degree(n, deg, seed=GRAPH_SEED)
    wall = float("inf")
    digest = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = color_edges(g, seed=RUN_SEED, **_kwargs(config))
        wall = min(wall, time.perf_counter() - t0)
        digest = hash(tuple(sorted(result.colors.items())))
    return {"config": config, "wall_seconds": wall, "digest": digest}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--n", type=int, default=None, help="graph size override")
    parser.add_argument("--deg", type=float, default=8.0, help="average degree")
    parser.add_argument("--repeats", type=int, default=3, help="min-of-N timing")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (600 if args.smoke else 4000)

    rows = [_run_config(c, n, args.deg, args.repeats) for c in CONFIGS]
    by_name = {r["config"]: r for r in rows}
    reference = by_name["baseline-general"]["wall_seconds"]
    for row in rows:
        row["ratio_vs_general"] = (
            row["wall_seconds"] / reference if reference else float("nan")
        )

    digests = {r["config"]: r["digest"] for r in rows}
    identical = len(set(digests.values())) == 1

    report = {
        "bench": "check_overhead",
        "n": n,
        "avg_degree": args.deg,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "rows": rows,
        "colorings_identical": identical,
        "disabled_gate": DISABLED_GATE,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2))

    for row in rows:
        print(
            f"{row['config']:<18} {row['wall_seconds'] * 1e3:9.1f} ms  "
            f"{row['ratio_vs_general']:.3f}x vs general"
        )
    print(f"colorings identical across configs: {identical}")

    if not identical:
        print("FAIL: monitored/unmonitored colorings differ (observer effect)")
        return 1
    disabled_ratio = by_name["monitors-disabled"]["ratio_vs_general"]
    if disabled_ratio > DISABLED_GATE:
        print(
            f"FAIL: monitors-disabled ratio {disabled_ratio:.3f} exceeds "
            f"the {DISABLED_GATE}x gate"
        )
        return 1
    print(f"PASS: disabled-monitor overhead {disabled_ratio:.3f}x <= {DISABLED_GATE}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
