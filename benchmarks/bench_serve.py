#!/usr/bin/env python
"""Coloring-service load benchmark: requests/s and mutation latency.

Starts a real :class:`repro.serve.server.ColoringServer` (asyncio, TCP
loopback) on a background thread, creates one session per algorithm
from an Erdős–Rényi base graph, and drives a deterministic load mix
through the blocking :class:`~repro.serve.protocol.ServeClient`:

* ``mutate`` batches — mostly single-edge insertions (the incremental
  path), some removals and small mixed batches;
* ``color`` point queries against edges known to exist.

Reported per algorithm: requests/s over the whole run, p50/p95/p99
latency per op class, the incremental hit ratio, and the fallback
count.  ``--check`` gates (smoke-calibrated, loopback):

* p99 mutate latency under ``--p99-gate`` seconds (default 2.0 — a
  localized rerun is milliseconds; only a pathological regression to
  whole-graph reruns on every batch breaches seconds),
* zero properness violations (every batch ran under server-side
  verification),
* incremental hit ratio ≥ 0.9 on single-insert batches.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.graphs.generators import erdos_renyi_avg_degree  # noqa: E402
from repro.obs.registry import MetricsRegistry  # noqa: E402
from repro.serve.protocol import ServeClient  # noqa: E402
from repro.serve.server import ColoringServer, ServerThread  # noqa: E402
from repro.serve.session import SessionManager  # noqa: E402

from benchlib import append_bench_history, host_fingerprint  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "out" / "BENCH_serve.json"
GRAPH_SEED = 11
LOAD_SEED = 5


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _latency_stats(samples: List[float]) -> Dict[str, float]:
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "p50_s": round(_percentile(ordered, 0.50), 6),
        "p95_s": round(_percentile(ordered, 0.95), 6),
        "p99_s": round(_percentile(ordered, 0.99), 6),
        "max_s": round(ordered[-1] if ordered else 0.0, 6),
    }


def _drive(
    client: ServeClient,
    name: str,
    algorithm: str,
    *,
    n: int,
    avg_degree: float,
    requests: int,
    rng: random.Random,
) -> Dict[str, Any]:
    base = erdos_renyi_avg_degree(n, avg_degree, seed=GRAPH_SEED)
    client.request(
        "create",
        name=name,
        algorithm=algorithm,
        seed=rng.randrange(2**31),
        edges=[[u, v] for u, v in base.edge_list()],
        num_nodes=base.num_nodes,
    )
    edges = list(base.edge_list())
    next_node = base.num_nodes
    mutate_lat: List[float] = []
    query_lat: List[float] = []
    single_attempts = 0
    single_hits = 0
    fallbacks = 0
    violations = 0
    t_start = time.perf_counter()
    for i in range(requests):
        roll = rng.random()
        if roll < 0.55:
            # Single-edge insertion (retry a few times for a non-edge).
            present = set(edges)
            pair = None
            for _ in range(30):
                u, v = rng.sample(range(next_node), 2)
                if (min(u, v), max(u, v)) not in present:
                    pair = (u, v)
                    break
            if pair is None:
                continue
            t0 = time.perf_counter()
            out = client.request(
                "mutate",
                name=name,
                mutations=[{"op": "add_edge", "u": pair[0], "v": pair[1]}],
            )["outcome"]
            mutate_lat.append(time.perf_counter() - t0)
            edges.append((min(pair), max(pair)))
            single_attempts += 1
            if out["incremental"] and not out["fallback"]:
                single_hits += 1
            fallbacks += out["fallback"]
            violations += len(out["violations"])
        elif roll < 0.7 and len(edges) > n // 2:
            u, v = edges.pop(rng.randrange(len(edges)))
            t0 = time.perf_counter()
            out = client.request(
                "mutate",
                name=name,
                mutations=[{"op": "remove_edge", "u": u, "v": v}],
            )["outcome"]
            mutate_lat.append(time.perf_counter() - t0)
            fallbacks += out["fallback"]
            violations += len(out["violations"])
        else:
            u, v = rng.choice(edges)
            t0 = time.perf_counter()
            client.request("color", name=name, u=u, v=v)
            query_lat.append(time.perf_counter() - t0)
    wall_s = time.perf_counter() - t_start
    total = len(mutate_lat) + len(query_lat)
    return {
        "algorithm": algorithm,
        "nodes": n,
        "requests": total,
        "wall_s": round(wall_s, 6),
        "requests_per_s": round(total / wall_s, 1) if wall_s else 0.0,
        "mutate": _latency_stats(mutate_lat),
        "query": _latency_stats(query_lat),
        "single_insert_attempts": single_attempts,
        "single_insert_hits": single_hits,
        "single_insert_hit_ratio": (
            round(single_hits / single_attempts, 4) if single_attempts else None
        ),
        "fallbacks": fallbacks,
        "violations": violations,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check", action="store_true", help="enforce the gates (see docstring)"
    )
    parser.add_argument(
        "--p99-gate", type=float, default=2.0, metavar="S",
        help="p99 mutate-latency bound in seconds for --check (default 2.0)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="requests per algorithm (default: 600, smoke: 150)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending to benchmarks/out/bench_history.jsonl",
    )
    args = parser.parse_args(argv)

    n = 150 if args.smoke else 600
    requests = args.requests or (150 if args.smoke else 600)
    rng = random.Random(LOAD_SEED)
    registry = MetricsRegistry()
    server = ColoringServer(SessionManager(), registry=registry)

    report: Dict[str, Any] = {
        "benchmark": "serve",
        "smoke": args.smoke,
        "host": host_fingerprint(),
        "algorithms": {},
    }
    with ServerThread(server) as srv:
        with ServeClient(srv.host, srv.port, timeout=120.0) as client:
            for algorithm in ("alg1", "dima2ed"):
                report["algorithms"][algorithm] = _drive(
                    client,
                    f"bench-{algorithm}",
                    algorithm,
                    n=n,
                    avg_degree=4.0,
                    requests=requests,
                    rng=rng,
                )

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True))
    for algorithm, row in report["algorithms"].items():
        print(
            f"serve[{algorithm}]: {row['requests']} requests at "
            f"{row['requests_per_s']}/s; mutate p50 "
            f"{row['mutate']['p50_s'] * 1e3:.2f}ms p99 "
            f"{row['mutate']['p99_s'] * 1e3:.2f}ms; hit ratio "
            f"{row['single_insert_hit_ratio']}; fallbacks {row['fallbacks']}"
        )
    print(f"report written to {args.out}")

    if not args.no_history:
        entry = {
            "schema": 1,
            "benchmark": "serve",
            "recorded": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "host": report["host"],
            "workloads": {
                alg: {
                    "serve": {
                        "wall_s": row["wall_s"],
                        "requests_per_s": row["requests_per_s"],
                        "mutate_p99_s": row["mutate"]["p99_s"],
                    }
                }
                for alg, row in report["algorithms"].items()
            },
        }
        append_bench_history(entry)

    if args.check:
        failures = []
        for algorithm, row in report["algorithms"].items():
            if row["violations"]:
                failures.append(
                    f"{algorithm}: {row['violations']} properness violations"
                )
            if row["mutate"]["p99_s"] > args.p99_gate:
                failures.append(
                    f"{algorithm}: mutate p99 {row['mutate']['p99_s']}s "
                    f"exceeds gate {args.p99_gate}s"
                )
            ratio = row["single_insert_hit_ratio"]
            if ratio is not None and ratio < 0.9:
                failures.append(
                    f"{algorithm}: incremental hit ratio {ratio} < 0.9"
                )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}")
            return 1
        print("checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
