"""Bench BASE — Algorithm 1 vs the sequential/distributed baselines.

Times each algorithm on the same workload graph and regenerates the
quality/rounds comparison table.  Expected shape: Algorithm 1 ≈ greedy
≈ Misra–Gries on colors; random-palette needs ~2x colors but ~10x fewer
rounds; sequential baselines are fastest in wall clock but need global
state.
"""

import pytest

from conftest import save_report
from repro.baselines import (
    greedy_edge_coloring,
    misra_gries_edge_coloring,
    random_palette_edge_coloring,
)
from repro.core.edge_coloring import color_edges
from repro.experiments import baselines_compare
from repro.graphs.generators import erdos_renyi_avg_degree

WORKLOAD = erdos_renyi_avg_degree(150, 10.0, seed=2012)


def test_alg1_automaton(benchmark):
    result = benchmark.pedantic(
        lambda: color_edges(WORKLOAD, seed=2012), rounds=3, iterations=1
    )
    benchmark.extra_info.update(colors=result.num_colors, rounds=result.rounds)


def test_greedy_first_fit(benchmark):
    colors = benchmark.pedantic(
        lambda: greedy_edge_coloring(WORKLOAD), rounds=5, iterations=1
    )
    benchmark.extra_info.update(colors=len(set(colors.values())))


def test_misra_gries(benchmark):
    colors = benchmark.pedantic(
        lambda: misra_gries_edge_coloring(WORKLOAD), rounds=3, iterations=1
    )
    benchmark.extra_info.update(colors=len(set(colors.values())))


def test_random_palette(benchmark):
    result = benchmark.pedantic(
        lambda: random_palette_edge_coloring(WORKLOAD, seed=2012),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(colors=result.num_colors, rounds=result.rounds)


def test_comparison_table(benchmark, report_dir):
    """Regenerate the full comparison table on a shared workload set."""
    rows = benchmark.pedantic(
        lambda: baselines_compare.run(n=100, deg=8.0, count=3, base_seed=2012),
        rounds=1,
        iterations=1,
    )
    save_report(report_dir, "baselines_compare", baselines_compare.render(rows))
    by_name = {r.algorithm: r for r in rows}
    # Shape assertions: who wins on what.
    assert by_name["misra-gries"].max_excess <= 1
    assert by_name["alg1-automaton"].mean_colors <= by_name["random-palette-2Δ"].mean_colors
    assert by_name["random-palette-2Δ"].mean_rounds < by_name["alg1-automaton"].mean_rounds
