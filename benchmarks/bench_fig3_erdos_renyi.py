"""Bench FIG3 — Algorithm 1 on Erdős–Rényi graphs (paper §IV-A, Figure 3).

Regenerates the figure's series (rounds vs Δ per (n, avg-degree) cell)
and times one coloring per cell.  Expected shape: rounds ≈ 2Δ with no
dependence on n; colors ≤ Δ+2.
"""

import pytest

from conftest import save_report
from repro.core.edge_coloring import color_edges
from repro.experiments import fig3_erdos_renyi
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.verify import assert_proper_edge_coloring

CELLS = [(n, deg) for n in fig3_erdos_renyi.SIZES for deg in fig3_erdos_renyi.DEGREES]


@pytest.mark.parametrize("n,deg", CELLS, ids=[f"n{n}-deg{d:g}" for n, d in CELLS])
def test_fig3_cell(benchmark, n, deg):
    """Time one Algorithm 1 run on one representative cell graph."""
    graph = erdos_renyi_avg_degree(n, deg, seed=2012)

    result = benchmark.pedantic(
        lambda: color_edges(graph, seed=2012), rounds=3, iterations=1
    )
    assert_proper_edge_coloring(graph, result.colors)
    benchmark.extra_info.update(
        delta=result.delta,
        rounds=result.rounds,
        rounds_per_delta=round(result.rounds_per_delta, 2),
        colors=result.num_colors,
        messages=result.metrics.messages_sent,
    )


def test_fig3_series(benchmark, report_dir):
    """Regenerate the full figure series at 2 replicates per cell."""

    def run():
        return fig3_erdos_renyi.run(scale=0.04, base_seed=2012)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    fit = report.rounds_fit()
    benchmark.extra_info.update(
        runs=len(report.records),
        slope_rounds_vs_delta=round(fit.slope, 2),
        r_squared=round(fit.r_squared, 3),
        max_excess_colors=max(r.excess_colors for r in report.records),
    )
    save_report(report_dir, "fig3_erdos_renyi", report.render())
    # The paper's headline shape for this figure:
    assert 1.0 < fit.slope < 4.0
    assert max(r.excess_colors for r in report.records) <= 2
