#!/usr/bin/env python
"""Observability overhead benchmark: what does watching a run cost?

Runs a traced variant of the delivery-bound flood workload (every node
broadcasts and emits one trace event per superstep — a deliberately
trace-heavy program) on a 10k-node Erdős–Rényi graph under five
observability configurations:

* ``baseline``       — no tracing, no telemetry (the reference);
* ``telemetry``      — :class:`AutomatonTelemetry` counters only
  (fast path retained);
* ``null-sampled``   — ``EventTracer(sample=1/100)`` into a
  :class:`NullSink` (fast path retained; the lossy-by-contract config);
* ``jsonl-sampled``  — the same sampling into a buffered
  :class:`JsonlSink` (what ``repro trace record --sample`` costs);
* ``null-unsampled`` — a full tracer into a :class:`NullSink`; this
  forces the reference general loop, so its ratio mostly measures the
  fast path given up, not the tracing itself.

Each configuration reports wall time and its overhead ratio against
``baseline``; results land in ``benchmarks/out/BENCH_trace_overhead.json``
(same shape conventions as ``BENCH_engine.json``).  The target from the
issue: the sampled-JSONL configuration stays within ~10% of baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from benchlib import peak_rss_kb  # noqa: E402
from repro.graphs.generators import erdos_renyi_avg_degree  # noqa: E402
from repro.runtime.engine import SynchronousEngine  # noqa: E402
from repro.runtime.message import Message  # noqa: E402
from repro.runtime.node import Context, NodeProgram  # noqa: E402
from repro.runtime.observe import AutomatonTelemetry, JsonlSink, NullSink  # noqa: E402
from repro.runtime.trace import EventTracer  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "out" / "BENCH_trace_overhead.json"
FLOOD_ROUNDS = 30
SAMPLE_RATE = 100
GRAPH_SEED = 1
RUN_SEED = 0


class TracedFlood(NodeProgram):
    """Flood probe that emits one trace event per node per superstep.

    The broadcast load matches ``bench_engine_scaling.Flood``; the added
    ``ctx.trace`` call per step makes this the worst plausible tracing
    density for a real program (the coloring algorithms trace far less).
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.acc = node_id + 1

    def on_superstep(self, ctx: Context, inbox: Sequence[Message]):
        self.acc = (self.acc * 31 + len(inbox)) % 1_000_003
        ctx.trace("tick", acc=self.acc)
        if ctx.superstep >= FLOOD_ROUNDS:
            self.halt()
        else:
            ctx.broadcast(self.acc)


def _run_config(config: str, n: int, deg: float, repeats: int) -> Dict[str, Any]:
    """Time ``repeats`` runs of one observability configuration."""
    g = erdos_renyi_avg_degree(n, deg, seed=GRAPH_SEED)
    wall = float("inf")
    extra: Dict[str, Any] = {}
    tmpdir = tempfile.mkdtemp(prefix="bench_trace_")
    for i in range(max(1, repeats)):
        tracer = None
        telemetry = None
        sink = None
        if config == "telemetry":
            telemetry = AutomatonTelemetry()
        elif config == "null-sampled":
            sink = NullSink()
            tracer = EventTracer(0, sink=sink, sample={"*": SAMPLE_RATE})
        elif config == "jsonl-sampled":
            sink = JsonlSink(Path(tmpdir) / f"trace-{i}.jsonl")
            tracer = EventTracer(0, sink=sink, sample={"*": SAMPLE_RATE})
        elif config == "null-unsampled":
            sink = NullSink()
            tracer = EventTracer(0, sink=sink)
        elif config != "baseline":
            raise ValueError(f"unknown config {config}")
        engine = SynchronousEngine(
            g, TracedFlood, seed=RUN_SEED, tracer=tracer, telemetry=telemetry
        )
        t0 = time.perf_counter()
        run = engine.run()
        if sink is not None:
            sink.close()
        wall = min(wall, time.perf_counter() - t0)
        extra = {
            "supersteps": run.supersteps,
            "messages_delivered": run.metrics.messages_delivered,
            "fastpath_engaged": engine._fastpath_engaged(),
        }
        if tracer is not None:
            extra["events_emitted"] = getattr(sink, "emitted", None)
            extra["events_sampled_out"] = tracer.sampled_out
    return {"wall_s": round(wall, 4), "peak_rss_kb": peak_rss_kb(), **extra}


def _measure(config: str, n: int, deg: float, repeats: int) -> Dict[str, Any]:
    """Fork-isolate each configuration so allocator state is per-run."""
    if "fork" not in mp.get_all_start_methods():
        return _run_config(config, n, deg, repeats)
    ctx = mp.get_context("fork")
    parent, child = ctx.Pipe()

    def _child(conn):
        try:
            conn.send(("ok", _run_config(config, n, deg, repeats)))
        except BaseException as exc:
            conn.send(("err", repr(exc)))
        finally:
            conn.close()

    proc = ctx.Process(target=_child, args=(child,))
    proc.start()
    child.close()
    status, payload = parent.recv()
    proc.join()
    if status != "ok":
        raise RuntimeError(f"benchmark child failed for {config}: {payload}")
    return payload


CONFIGS = ("baseline", "telemetry", "null-sampled", "jsonl-sampled", "null-unsampled")


def run_sweep(smoke: bool, repeats: int) -> Dict[str, Any]:
    n, deg = (1_000, 16.0) if smoke else (10_000, 32.0)
    results: Dict[str, Any] = {}
    for config in CONFIGS:
        print(f"[{config}] ...", flush=True)
        results[config] = _measure(config, n, deg, repeats)
    base = results["baseline"]["wall_s"]
    for config, entry in results.items():
        entry["overhead_ratio"] = round(entry["wall_s"] / base, 3) if base else None
        print(
            f"[{config}] {entry['wall_s']:.3f}s "
            f"x{entry['overhead_ratio']:.3f} of baseline "
            f"(fastpath={'yes' if entry['fastpath_engaged'] else 'no'})",
            flush=True,
        )
    return {
        "schema": 1,
        "generated_by": "benchmarks/bench_trace_overhead.py",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "n": n,
        "deg": deg,
        "flood_rounds": FLOOD_ROUNDS,
        "sample_rate": SAMPLE_RATE,
        "repeats": repeats,
        "configs": results,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (1k nodes)"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="where to write the JSON report"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per configuration; min wall time is reported",
    )
    args = parser.parse_args(argv)

    report = run_sweep(smoke=args.smoke, repeats=args.repeats)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
