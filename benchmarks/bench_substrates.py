"""Bench SUB — substrate micro-benchmarks (not in the paper).

Times the building blocks the experiments lean on, so a performance
regression in the simulator or the generators is visible independently
of the algorithm-level benches.
"""

import pytest

from repro.core.matching import find_maximal_matching
from repro.graphs.generators import (
    erdos_renyi_gnp,
    scale_free,
    small_world,
    unit_disk,
)
from repro.runtime.engine import SynchronousEngine
from repro.runtime.node import NodeProgram


class NoopRounds(NodeProgram):
    """Pure engine overhead: broadcast-and-halt after k supersteps."""

    def __init__(self, node_id, k=20):
        self.node_id = node_id
        self.k = k

    def on_superstep(self, ctx, inbox):
        if ctx.superstep < self.k:
            ctx.broadcast(ctx.superstep)
        else:
            self.halt()


class TestGenerators:
    def test_gnp_geometric_skip(self, benchmark):
        benchmark(lambda: erdos_renyi_gnp(2000, 0.005, seed=1))

    def test_scale_free_ba(self, benchmark):
        benchmark(lambda: scale_free(1000, 2, seed=1))

    def test_scale_free_weighted(self, benchmark):
        benchmark(lambda: scale_free(400, 2, power=1.5, seed=1))

    def test_small_world(self, benchmark):
        benchmark(lambda: small_world(1000, 6, 0.3, seed=1))

    def test_unit_disk_bucketed(self, benchmark):
        benchmark(lambda: unit_disk(1000, 0.05, seed=1))


class TestEngine:
    def test_superstep_overhead_grid(self, benchmark):
        from repro.graphs.generators import grid_graph

        g = grid_graph(20, 20)
        benchmark.pedantic(
            lambda: SynchronousEngine(g, NoopRounds, seed=1).run(),
            rounds=3,
            iterations=1,
        )

    def test_matching_medium_er(self, benchmark):
        g = erdos_renyi_gnp(300, 0.03, seed=2)
        result = benchmark.pedantic(
            lambda: find_maximal_matching(g, seed=2), rounds=3, iterations=1
        )
        benchmark.extra_info.update(size=result.size, rounds=result.rounds)
