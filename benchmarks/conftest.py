"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment (table/figure) of the paper has a bench module here.
Each module contains

* **per-cell benches** — time one algorithm run on one representative
  graph per workload cell (graph construction excluded from the timed
  region), attaching the paper's reported quantities (Δ, rounds,
  colors) as ``extra_info`` so the benchmark table doubles as the
  figure's data rows; and
* **a series bench** — regenerate the figure's aggregate series at a
  reduced replicate count and write the full report to
  ``benchmarks/out/<name>.txt``.

Wall-clock timings measure the *simulator*; the paper's own cost claims
(rounds, messages) are exact counters reported via ``extra_info`` and
the series reports.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    """Directory collecting the regenerated figure reports."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_report(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a regenerated report and echo a pointer to the terminal."""
    path = report_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
