"""Shared helpers for the benchmark scripts.

Kept dependency-free (stdlib only) so any bench script can ``import
benchlib`` after putting the ``benchmarks/`` directory on ``sys.path``
(the scripts do this themselves so they also work when loaded via
``repro bench``).

Besides the portable :func:`peak_rss_kb`, this module holds the
**bench-history store**: an append-only JSONL trajectory of benchmark
runs (``benchmarks/out/bench_history.jsonl``) plus the comparator
behind ``repro bench --compare BASELINE``.  Each history entry is one
sweep flattened to the per-(workload, tier) numbers that matter for
regression tracking — wall seconds, peak RSS, state digest — stamped
with a host fingerprint.  The comparator applies two kinds of verdicts:

* **wall-time** verdicts (current wall vs baseline wall per tier) only
  when both entries carry the *same* host fingerprint — absolute times
  from different machines are not comparable;
* **speedup** verdicts (tier wall relative to the general loop within
  the same entry) on any host pair — self-normalized ratios transfer
  across machines, mirroring the long-standing ``--check`` gate.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

try:
    import resource
except ImportError:  # pragma: no cover - Windows
    resource = None

__all__ = [
    "peak_rss_kb",
    "DEFAULT_HISTORY",
    "HISTORY_SCHEMA",
    "host_fingerprint",
    "history_entry_from_report",
    "append_bench_history",
    "read_bench_history",
    "compare_entries",
    "format_compare",
]

#: Default location of the append-only bench-history trajectory.
DEFAULT_HISTORY = Path(__file__).resolve().parent / "out" / "bench_history.jsonl"

#: History-entry schema version (bump on incompatible change).
HISTORY_SCHEMA = 1

#: Current wall may be at most this multiple of baseline wall before a
#: same-host wall-time verdict flags a regression.  Deliberately loose —
#: min-of-N timings on shared CI runners are still noisy.
WALL_GATE = 1.6

#: Allowed relative *speedup* regression (tier vs general), matching the
#: default tolerance of ``bench_engine_scaling.py --check``.
SPEEDUP_TOLERANCE = 0.25


def peak_rss_kb() -> int:
    """Peak RSS of the calling process in **KiB** on every platform.

    ``getrusage(...).ru_maxrss`` reports kilobytes on Linux but
    **bytes** on macOS (compare getrusage(2) on each); normalising here
    keeps the ``peak_rss_kb`` fields of the committed benchmark JSONs —
    and the ``repro_peak_rss_kb``-style metric gauges fed from them —
    comparable across contributor machines instead of silently off by
    1024x.  Returns 0 where :mod:`resource` is unavailable (Windows).

    :func:`repro.obs.live.peak_rss_kb` implements the same contract for
    the installed package (bench scripts must also work without
    ``src/`` on ``sys.path``, so this copy stays self-contained);
    ``tests/unit/obs/test_live.py`` pins the two to agree.
    """
    if resource is None:  # pragma: no cover - Windows
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss // 1024 if sys.platform == "darwin" else rss


# ---------------------------------------------------------------------------
# Bench-history store
# ---------------------------------------------------------------------------


def host_fingerprint() -> Dict[str, str]:
    """Identify the benchmarking host for same-host wall comparisons.

    The ``fingerprint`` field is a short stable hash of (machine,
    system, python version); two entries with equal fingerprints were
    recorded on comparable interpreters/architectures, so their
    absolute wall times may be diffed.
    """
    machine = platform.machine()
    system = platform.system()
    python = platform.python_version()
    digest = hashlib.blake2b(
        f"{machine}|{system}|{python}".encode(), digest_size=6
    ).hexdigest()
    return {
        "machine": machine,
        "system": system,
        "python": python,
        "fingerprint": digest,
    }


_TIER_FIELDS = ("wall_s", "peak_rss_kb", "rounds", "supersteps", "state_digest")


def history_entry_from_report(
    report: Dict[str, Any],
    *,
    recorded: Optional[str] = None,
    host: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Flatten an engine-scaling report into one history entry.

    Accepts the schema written by ``bench_engine_scaling.py`` (a
    ``workloads`` mapping whose per-workload dict holds one sub-dict
    per tier, each with a ``wall_s``).  Only the regression-relevant
    fields are kept, so entries stay one compact JSONL line.
    """
    workloads: Dict[str, Any] = {}
    for name, payload in report.get("workloads", {}).items():
        tiers: Dict[str, Any] = {}
        for tier, row in payload.items():
            if isinstance(row, dict) and "wall_s" in row:
                tiers[tier] = {
                    k: row[k] for k in _TIER_FIELDS if k in row
                }
        if tiers:
            workloads[name] = {"tiers": tiers}
    return {
        "schema": HISTORY_SCHEMA,
        "bench": report.get("bench", "engine_scaling"),
        "mode": report.get("mode"),
        "recorded": recorded
        if recorded is not None
        else time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "host": host if host is not None else host_fingerprint(),
        "workloads": workloads,
    }


def append_bench_history(entry: Dict[str, Any], path=DEFAULT_HISTORY) -> Path:
    """Append one entry to the JSONL trajectory (created on first use)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def read_bench_history(path=DEFAULT_HISTORY) -> List[Dict[str, Any]]:
    """All entries of a JSONL trajectory, oldest first.

    Unknown *newer* schemas raise; blank lines are skipped so a
    hand-edited file stays readable.
    """
    entries: List[Dict[str, Any]] = []
    with open(Path(path), "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            schema = entry.get("schema", 1)
            if schema > HISTORY_SCHEMA:
                raise ValueError(
                    f"{path}:{line_no}: history schema {schema} is newer "
                    f"than this checkout understands ({HISTORY_SCHEMA})"
                )
            entries.append(entry)
    return entries


def _speedups(tiers: Dict[str, Any]) -> Dict[str, float]:
    """Per-tier speedup vs the general loop, from one entry's walls."""
    general = tiers.get("general", {}).get("wall_s")
    if not general:
        return {}
    out = {}
    for tier, row in tiers.items():
        wall = row.get("wall_s")
        if tier != "general" and wall:
            out[tier] = general / wall
    return out


def compare_entries(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    wall_gate: float = WALL_GATE,
    speedup_tolerance: float = SPEEDUP_TOLERANCE,
) -> Dict[str, Any]:
    """Diff two history entries into per-workload regression verdicts.

    Returns ``{"ok", "same_host", "compared", "verdicts"}`` where each
    verdict is ``{"workload", "tier", "kind", "baseline", "current",
    "ratio", "verdict"}`` with ``verdict`` one of ``ok`` /
    ``regression`` / ``skipped`` / ``digest-changed`` (informational;
    never fails the comparison on its own — a digest change is a
    behavior change to review, not necessarily a perf bug).
    """
    same_host = (
        current.get("host", {}).get("fingerprint") is not None
        and current.get("host", {}).get("fingerprint")
        == baseline.get("host", {}).get("fingerprint")
    )
    verdicts: List[Dict[str, Any]] = []
    compared = 0
    cur_wl = current.get("workloads", {})
    base_wl = baseline.get("workloads", {})
    for name in sorted(set(cur_wl) & set(base_wl)):
        cur_tiers = cur_wl[name]["tiers"]
        base_tiers = base_wl[name]["tiers"]
        shared = sorted(set(cur_tiers) & set(base_tiers))
        for tier in shared:
            cur_row, base_row = cur_tiers[tier], base_tiers[tier]
            compared += 1
            base_wall, cur_wall = base_row.get("wall_s"), cur_row.get("wall_s")
            if not same_host:
                verdicts.append(
                    {
                        "workload": name,
                        "tier": tier,
                        "kind": "wall",
                        "baseline": base_wall,
                        "current": cur_wall,
                        "ratio": None,
                        "verdict": "skipped",
                    }
                )
            elif base_wall and cur_wall is not None:
                ratio = cur_wall / base_wall
                verdicts.append(
                    {
                        "workload": name,
                        "tier": tier,
                        "kind": "wall",
                        "baseline": base_wall,
                        "current": cur_wall,
                        "ratio": ratio,
                        "verdict": "regression" if ratio > wall_gate else "ok",
                    }
                )
            base_digest = base_row.get("state_digest")
            cur_digest = cur_row.get("state_digest")
            if base_digest and cur_digest and base_digest != cur_digest:
                verdicts.append(
                    {
                        "workload": name,
                        "tier": tier,
                        "kind": "digest",
                        "baseline": base_digest,
                        "current": cur_digest,
                        "ratio": None,
                        "verdict": "digest-changed",
                    }
                )
        cur_speed = _speedups(cur_tiers)
        base_speed = _speedups(base_tiers)
        for tier in sorted(set(cur_speed) & set(base_speed)):
            compared += 1
            floor = base_speed[tier] * (1.0 - speedup_tolerance)
            verdicts.append(
                {
                    "workload": name,
                    "tier": tier,
                    "kind": "speedup",
                    "baseline": base_speed[tier],
                    "current": cur_speed[tier],
                    "ratio": cur_speed[tier] / base_speed[tier],
                    "verdict": "regression" if cur_speed[tier] < floor else "ok",
                }
            )
    ok = compared > 0 and not any(
        v["verdict"] == "regression" for v in verdicts
    )
    return {
        "ok": ok,
        "same_host": same_host,
        "compared": compared,
        "verdicts": verdicts,
    }


def format_compare(result: Dict[str, Any]) -> str:
    """Human-readable verdict table for :func:`compare_entries`."""
    lines = []
    if not result["compared"]:
        return "compare: no shared workloads between run and baseline"
    if not result["same_host"]:
        lines.append(
            "compare: host fingerprints differ — wall-time verdicts "
            "skipped, speedup ratios still gated"
        )
    for v in result["verdicts"]:
        if v["kind"] == "digest":
            lines.append(
                f"  {v['workload']:<22} {v['tier']:<10} digest   "
                f"{v['baseline']} -> {v['current']}  [{v['verdict']}]"
            )
            continue
        if v["verdict"] == "skipped":
            continue
        unit = "s" if v["kind"] == "wall" else "x"
        lines.append(
            f"  {v['workload']:<22} {v['tier']:<10} {v['kind']:<8} "
            f"{v['baseline']:.4f}{unit} -> {v['current']:.4f}{unit} "
            f"({v['ratio']:.2f}x)  [{v['verdict']}]"
        )
    regressions = sum(1 for v in result["verdicts"] if v["verdict"] == "regression")
    lines.append(
        f"compare: {result['compared']} comparisons, "
        f"{regressions} regression(s) — {'PASS' if result['ok'] else 'FAIL'}"
    )
    return "\n".join(lines)
