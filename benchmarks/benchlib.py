"""Shared helpers for the benchmark scripts.

Kept dependency-free so any bench script can ``import benchlib`` after
putting the ``benchmarks/`` directory on ``sys.path`` (the scripts do
this themselves so they also work when loaded via ``repro bench``).
"""

from __future__ import annotations

import resource
import sys

__all__ = ["peak_rss_kb"]


def peak_rss_kb() -> int:
    """Peak RSS of the calling process in KiB, portable across platforms.

    ``getrusage(...).ru_maxrss`` reports kilobytes on Linux but **bytes**
    on macOS (compare getrusage(2) on each); normalising here keeps the
    ``peak_rss_kb`` fields of the committed benchmark JSONs comparable
    across contributor machines instead of silently off by 1024x.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss // 1024 if sys.platform == "darwin" else rss
