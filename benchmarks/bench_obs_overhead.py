#!/usr/bin/env python
"""Observability overhead benchmark: what does watching a run cost?

Times Algorithm 1 on an Erdős–Rényi graph (vectorized batched kernel,
the production path) under three configurations:

* ``baseline`` — default ``color_edges``, nothing attached;
* ``metrics`` — the full observability stack attached: telemetry
  collector, :class:`repro.obs.spans.SpanProfiler`, and a
  :class:`repro.obs.live.SnapshotPublisher` writing a real ring file.
  **Gate: ≤ 1.05×** and digest-identical to baseline — the acceptance
  criterion "metrics-enabled vectorized run is bit-identical to
  metrics-off and within 1.05x wall time";
* ``metrics+registry`` — additionally folds the finished run's
  counters into a :class:`repro.obs.registry.MetricsRegistry` and
  renders the OpenMetrics export; reported for information (the fold
  is post-run, so it cannot perturb the run itself).

The digest equality doubles as a no-observer-effect gate: attaching
the observers must not knock the run off the vectorized path or change
a single color or round count.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py           # full (n=10000)
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke   # CI (n=600)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.edge_coloring import color_edges  # noqa: E402
from repro.graphs.generators import erdos_renyi_avg_degree  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsRegistry,
    SnapshotPublisher,
    SpanProfiler,
    observe_run_metrics,
    render_openmetrics,
)
from repro.runtime.observe import AutomatonTelemetry  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "out" / "BENCH_obs_overhead.json"
GRAPH_SEED = 1
RUN_SEED = 0
METRICS_GATE = 1.05

CONFIGS = ("baseline", "metrics", "metrics+registry")


def _run_once(config: str, g, ring_dir: Path) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {}
    registry = None
    publisher = None
    if config != "baseline":
        kwargs["telemetry"] = AutomatonTelemetry()
        kwargs["profiler"] = SpanProfiler()
        publisher = SnapshotPublisher(
            ring_dir / f"{config}.ring.jsonl", interval=0.25
        )
        kwargs["publisher"] = publisher
    if config == "metrics+registry":
        registry = MetricsRegistry()
    t0 = time.perf_counter()
    result = color_edges(g, seed=RUN_SEED, **kwargs)
    if publisher is not None:
        publisher.close()
    if registry is not None:
        observe_run_metrics(registry, result.metrics)
        render_openmetrics(registry.snapshot())
    wall = time.perf_counter() - t0
    digest = hash(tuple(sorted(result.colors.items())))
    return {
        "wall_seconds": wall,
        "digest": digest,
        "supersteps": result.supersteps,
    }


def _run_config(config: str, g, repeats: int, ring_dir: Path) -> Dict[str, Any]:
    best: Dict[str, Any] = {"wall_seconds": float("inf")}
    for _ in range(max(1, repeats)):
        row = _run_once(config, g, ring_dir)
        if row["wall_seconds"] < best["wall_seconds"]:
            best = row
    return {"config": config, **best}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--n", type=int, default=None, help="graph size override")
    parser.add_argument("--deg", type=float, default=8.0, help="average degree")
    parser.add_argument("--repeats", type=int, default=3, help="min-of-N timing")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (600 if args.smoke else 10_000)

    g = erdos_renyi_avg_degree(n, args.deg, seed=GRAPH_SEED)
    with tempfile.TemporaryDirectory(prefix="obs-overhead-") as tmp:
        rows = [
            _run_config(c, g, args.repeats, Path(tmp)) for c in CONFIGS
        ]
    by_name = {r["config"]: r for r in rows}
    reference = by_name["baseline"]["wall_seconds"]
    for row in rows:
        row["ratio_vs_baseline"] = (
            row["wall_seconds"] / reference if reference else float("nan")
        )

    identical = (
        len({r["digest"] for r in rows}) == 1
        and len({r["supersteps"] for r in rows}) == 1
    )

    report = {
        "bench": "obs_overhead",
        "n": n,
        "avg_degree": args.deg,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "rows": rows,
        "colorings_identical": identical,
        "metrics_gate": METRICS_GATE,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2))

    for row in rows:
        print(
            f"{row['config']:<18} {row['wall_seconds'] * 1e3:9.1f} ms  "
            f"{row['ratio_vs_baseline']:.3f}x vs baseline"
        )
    print(f"colorings identical across configs: {identical}")

    if not identical:
        print("FAIL: metrics-on coloring differs from metrics-off (observer effect)")
        return 1
    ratio = by_name["metrics"]["ratio_vs_baseline"]
    if ratio > METRICS_GATE:
        print(
            f"FAIL: metrics-enabled ratio {ratio:.3f} exceeds "
            f"the {METRICS_GATE}x gate"
        )
        return 1
    print(f"PASS: metrics-enabled overhead {ratio:.3f}x <= {METRICS_GATE}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
