"""Bench ABL — design-choice ablations (DESIGN.md faithfulness notes).

Times and tabulates the three knobs our implementation exposes: the
role-coin bias, DiMa2Ed's channel-selection strategy, and the
fault-hardening (defensive) mode under message loss.
"""

import pytest

from conftest import save_report
from repro.core.dima2ed import StrongColoringParams, strong_color_arcs
from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.experiments import ablations
from repro.graphs.generators import erdos_renyi_avg_degree

GRAPH = erdos_renyi_avg_degree(100, 8.0, seed=2012)
DIGRAPH = erdos_renyi_avg_degree(50, 5.0, seed=2012).to_directed()


@pytest.mark.parametrize("bias", [0.25, 0.5, 0.75], ids=lambda b: f"p{b:g}")
def test_invite_bias(benchmark, bias):
    """Algorithm 1 wall clock and rounds across coin biases."""
    result = benchmark.pedantic(
        lambda: color_edges(
            GRAPH, seed=2012, params=EdgeColoringParams(p_invite=bias)
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(rounds=result.rounds, colors=result.num_colors)


@pytest.mark.parametrize("strategy", ["first_fit", "random_window"])
def test_channel_strategy(benchmark, strategy):
    """DiMa2Ed wall clock and rounds per channel-selection strategy."""
    result = benchmark.pedantic(
        lambda: strong_color_arcs(
            DIGRAPH,
            seed=2012,
            params=StrongColoringParams(channel_strategy=strategy),
        ),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update(rounds=result.rounds, channels=result.num_colors)


@pytest.mark.parametrize("defensive", [False, True], ids=["plain", "defensive"])
def test_defensive_overhead_reliable_network(benchmark, defensive):
    """What fault-hardening costs when the network is actually reliable."""
    result = benchmark.pedantic(
        lambda: color_edges(
            GRAPH, seed=2012, params=EdgeColoringParams(defensive=defensive)
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(
        rounds=result.rounds,
        colors=result.num_colors,
        words=result.metrics.words_delivered,
    )


@pytest.mark.parametrize(
    "color_rule,responder_rule",
    [("lowest", "random"), ("random_window", "random"), ("lowest", "lowest_color")],
    ids=["paper", "random-propose", "lowest-accept"],
)
def test_color_rules(benchmark, color_rule, responder_rule):
    """Alg 1 proposal/acceptance rule variants (paper = lowest/random)."""
    from repro.core.edge_coloring import EdgeColoringParams, color_edges

    result = benchmark.pedantic(
        lambda: color_edges(
            GRAPH,
            seed=2012,
            params=EdgeColoringParams(
                color_strategy=color_rule, responder_strategy=responder_rule
            ),
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(rounds=result.rounds, colors=result.num_colors)


def test_ablation_tables(benchmark, report_dir):
    """Regenerate all four ablation tables."""

    def run():
        return (
            ablations.sweep_invite_bias(n=60, deg=6.0, count=4, base_seed=2012),
            ablations.compare_color_rules(n=50, deg=6.0, count=3, base_seed=2012),
            ablations.compare_channel_strategies(n=40, deg=4.0, count=3, base_seed=2012),
            ablations.fault_injection_study(
                drop_rates=(0.0, 0.02), n=40, deg=4.0, count=3, base_seed=2012
            ),
        )

    bias_rows, rule_rows, chan_rows, fault_rows = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            ablations.render_rows("invite-coin bias (Algorithm 1)", bias_rows),
            ablations.render_rows("proposal/acceptance rules (Algorithm 1)", rule_rows),
            ablations.render_rows("channel strategy (DiMa2Ed)", chan_rows),
            ablations.render_rows("message loss (Algorithm 1)", fault_rows),
        ]
    )
    save_report(report_dir, "ablations", text)
    # Reliable runs never fail regardless of defensive mode.
    assert all(r.failures == 0 for r in fault_rows if "drop=0 " in r.label)
