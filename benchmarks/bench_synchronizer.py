"""Bench SYNC — the α-synchronizer substrate.

Times Algorithm 1 under the asynchronous engine vs the synchronous one
and regenerates the overhead-pricing table.  Shape assertions: results
identical, protocol overhead independent of link delay, time dilation
linear in the delay bound.
"""

from conftest import save_report
from repro.core.edge_coloring import EdgeColoringProgram
from repro.experiments import synchronizer_overhead
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.runtime.async_engine import AsyncEngine
from repro.runtime.engine import SynchronousEngine

GRAPH = erdos_renyi_avg_degree(60, 6.0, seed=2012)


def _factory(u):
    return EdgeColoringProgram(u)


def test_sync_engine_alg1(benchmark):
    run = benchmark.pedantic(
        lambda: SynchronousEngine(GRAPH, _factory, seed=2012).run(),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(supersteps=run.supersteps)


def test_async_engine_alg1(benchmark):
    run = benchmark.pedantic(
        lambda: AsyncEngine(GRAPH, _factory, seed=2012, max_delay=4).run(),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(
        pulses=run.pulses,
        overhead=round(run.protocol_messages / max(1, run.metrics.messages_sent), 1),
    )
    assert run.completed


def test_overhead_table(benchmark, report_dir):
    rows = benchmark.pedantic(
        lambda: synchronizer_overhead.run(
            n=40, degrees=(4.0, 8.0), max_delays=(1, 4), base_seed=2012
        ),
        rounds=1,
        iterations=1,
    )
    save_report(report_dir, "synchronizer_overhead", synchronizer_overhead.render(rows))
    by_cell = {r.cell: r for r in rows}
    # Overhead counts are delay-independent; dilation is not.
    assert (
        by_cell["deg=4 delay≤1"].protocol_messages
        == by_cell["deg=4 delay≤4"].protocol_messages
    )
    assert (
        by_cell["deg=4 delay≤4"].ticks_per_pulse
        > by_cell["deg=4 delay≤1"].ticks_per_pulse
    )
