"""Bench FIG4 — Algorithm 1 on scale-free graphs (paper §IV-B, Figure 4).

Expected shape: rounds grow with Δ at a constant rate; colors never
exceed Δ (the paper's standout scale-free result).
"""

import pytest

from conftest import save_report
from repro.core.edge_coloring import color_edges
from repro.experiments import fig4_scale_free
from repro.graphs.generators import scale_free
from repro.verify import assert_proper_edge_coloring

CELLS = [
    (n, power) for n in fig4_scale_free.SIZES for power in fig4_scale_free.POWERS
]


@pytest.mark.parametrize(
    "n,power", CELLS, ids=[f"n{n}-pow{p:g}" for n, p in CELLS]
)
def test_fig4_cell(benchmark, n, power):
    """Time one Algorithm 1 run per (n, attachment-power) cell."""
    graph = scale_free(
        n, fig4_scale_free.EDGES_PER_NODE, power=power, seed=2012
    )
    result = benchmark.pedantic(
        lambda: color_edges(graph, seed=2012), rounds=3, iterations=1
    )
    assert_proper_edge_coloring(graph, result.colors)
    benchmark.extra_info.update(
        delta=result.delta,
        rounds=result.rounds,
        colors=result.num_colors,
        excess=result.num_colors - result.delta,
    )


def test_fig4_series(benchmark, report_dir):
    """Regenerate the figure series at 2 replicates per cell."""

    def run():
        return fig4_scale_free.run(scale=0.04, base_seed=2012)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        runs=len(report.records),
        slope_rounds_vs_delta=round(report.rounds_fit().slope, 2),
        max_excess_colors=max(r.excess_colors for r in report.records),
    )
    save_report(report_dir, "fig4_scale_free", report.render())
    # Paper: never more than Δ colors on scale-free graphs.
    assert max(r.excess_colors for r in report.records) <= 0
