"""Bench PROP1/MSG — analysis extensions.

* PROP1: traced pairing-rate measurement across the family zoo, with
  the paper's [1/4, 1/2] corridor asserted for degree-homogeneous
  families.
* MSG: message-complexity sweeps; per-node send rate must stay flat
  in n (the paper's "one-hop information only" in budget terms).
"""

from conftest import save_report
from repro.experiments import message_complexity, prop1_pairing


def test_prop1_pairing_rates(benchmark, report_dir):
    rows = benchmark.pedantic(
        lambda: prop1_pairing.run(runs_per_family=3, base_seed=2012),
        rounds=1,
        iterations=1,
    )
    save_report(report_dir, "prop1_pairing", prop1_pairing.render(rows))
    by_family = {r.family: r.summary for r in rows}
    for family in ("er-n80-deg8", "regular-n60-d6", "complete-n12"):
        rate = by_family[family].mean_rate
        benchmark.extra_info[family] = round(rate, 3)
        assert prop1_pairing.LOWER_BOUND * 0.8 <= rate <= prop1_pairing.UPPER_BOUND * 1.3
    # The adversarial star sits far below the corridor globally.
    assert by_family["star-n32"].mean_rate < prop1_pairing.LOWER_BOUND


def test_message_complexity_n_sweep(benchmark, report_dir):
    rows = benchmark.pedantic(
        lambda: message_complexity.run_n_sweep(
            sizes=(50, 100, 200), deg=8.0, count=3, base_seed=2012
        ),
        rounds=1,
        iterations=1,
    )
    save_report(
        report_dir, "message_complexity_n", message_complexity.render("n-sweep", rows)
    )
    rates = [r.sends_per_node_round for r in rows]
    benchmark.extra_info.update(send_rates=[round(r, 3) for r in rates])
    # Per-node per-round send rate is n-independent and within the
    # 3-broadcast model bound.
    assert max(rates) <= 3.0
    assert max(rates) - min(rates) < 0.3


def test_message_complexity_degree_sweep(benchmark, report_dir):
    rows = benchmark.pedantic(
        lambda: message_complexity.run_degree_sweep(
            n=100, degrees=(4.0, 8.0, 16.0), count=3, base_seed=2012
        ),
        rounds=1,
        iterations=1,
    )
    save_report(
        report_dir,
        "message_complexity_degree",
        message_complexity.render("degree-sweep", rows),
    )
    # Deliveries per edge grow with Δ (the run lasts Θ(Δ) rounds).
    per_edge = [r.deliveries_per_edge for r in rows]
    assert per_edge[0] < per_edge[1] < per_edge[2]
