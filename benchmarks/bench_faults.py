"""Bench FAULTS — price of robustness on an unreliable network.

Sweeps message-loss rate × hardening mode for Algorithm 1 and reports
what each layer costs (rounds, retransmissions, palette) and what it
buys (proper/complete vs dirty/stuck).  The per-cell benches time the
hardened configurations at the paper's density; the series bench
writes the full sweep to ``benchmarks/out/fault_sweep.txt``.
"""

import pytest

from conftest import save_report
from repro.core.edge_coloring import EdgeColoringParams, color_edges
from repro.errors import ConvergenceError
from repro.graphs.generators import erdos_renyi_avg_degree
from repro.runtime.faults import CrashNodes, DropRandomMessages
from repro.verify import (
    assert_partial_edge_coloring,
    check_edge_coloring_complete,
    check_proper_edge_coloring,
)

GRAPH = erdos_renyi_avg_degree(100, 8.0, seed=3001)
SEED = 3001


def _run(rate, *, recovery=False, transport=False, seed=SEED):
    return color_edges(
        GRAPH,
        seed=seed,
        params=EdgeColoringParams(
            recovery=recovery,
            defensive=True,
            max_rounds=6000,
        ),
        faults=DropRandomMessages(rate, seed=seed) if rate else None,
        transport=transport or None,
        check_consistency=False,
    )


@pytest.mark.parametrize(
    "mode",
    ["defensive", "recovery", "recovery+transport"],
)
def test_hardening_overhead_at_p02(benchmark, mode):
    """Wall clock of each hardening layer at 2% loss."""
    recovery = mode != "defensive"
    transport = mode == "recovery+transport"
    result = benchmark.pedantic(
        lambda: _run(0.02, recovery=recovery, transport=transport),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update(
        rounds=result.rounds,
        colors=result.num_colors,
        retransmissions=result.metrics.retransmissions,
        frames=result.metrics.transport_frames,
    )


def test_transport_overhead_clean_network(benchmark):
    """What the reliable transport costs when nothing is ever lost."""
    result = benchmark.pedantic(
        lambda: _run(0.0, recovery=True, transport=True),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update(
        rounds=result.rounds,
        frames=result.metrics.transport_frames,
        retransmissions=result.metrics.retransmissions,
    )


def test_crash_recovery(benchmark):
    """Recovery + transport with 10% of the fleet crash-stopped."""

    def run():
        result = color_edges(
            GRAPH,
            seed=SEED,
            params=EdgeColoringParams(recovery=True, max_rounds=6000),
            faults=CrashNodes.random(
                GRAPH.num_nodes, 0.10, window=(4, 60), seed=SEED
            ),
            transport=True,
            check_consistency=False,
        )
        assert_partial_edge_coloring(GRAPH, result.colors, result.crashed)
        return result

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update(
        rounds=result.rounds,
        crashed=len(result.crashed),
        colors=result.num_colors,
    )


def test_series_fault_sweep(report_dir):
    """Loss-rate × mode sweep -> benchmarks/out/fault_sweep.txt."""
    rates = [0.0, 0.01, 0.02, 0.05]
    modes = [
        ("defensive", dict(recovery=False, transport=False)),
        ("recovery", dict(recovery=True, transport=False)),
        ("recovery+transport", dict(recovery=True, transport=True)),
    ]
    replicates = 3

    lines = [
        "Fault sweep: Algorithm 1 on G(100, davg=8), defensive listener on",
        f"replicates per cell: {replicates}",
        "",
        f"{'loss':>5} {'mode':>20} {'ok':>5} {'rounds':>8} "
        f"{'colors':>7} {'retx':>7} {'outcome':>10}",
    ]
    for rate in rates:
        for name, cfg in modes:
            ok = 0
            rounds = []
            colors = []
            retx = []
            outcome = "clean"
            for rep in range(replicates):
                try:
                    result = _run(rate, seed=SEED + rep, **cfg)
                except ConvergenceError:
                    outcome = "stuck"
                    continue
                bad = check_proper_edge_coloring(GRAPH, result.colors)
                bad += check_edge_coloring_complete(GRAPH, result.colors)
                if bad:
                    outcome = "dirty"
                    continue
                ok += 1
                rounds.append(result.rounds)
                colors.append(result.num_colors)
                retx.append(result.metrics.retransmissions)
            mean = lambda xs: sum(xs) / len(xs) if xs else float("nan")
            lines.append(
                f"{rate:>5.2f} {name:>20} {ok}/{replicates:>1} "
                f"{mean(rounds):>8.1f} {mean(colors):>7.1f} "
                f"{mean(retx):>7.1f} {outcome:>10}"
            )
    lines += [
        "",
        "Reading: 'recovery+transport' must be clean at every rate —",
        "retransmissions absorb loss, corrective replies heal desync.",
        "Bare 'defensive' may go stuck/dirty as the rate grows; that gap",
        "is the value of the reliability layer (Proposition 2's premise).",
    ]
    lines += _chaos_percentile_section()
    save_report(report_dir, "fault_sweep", "\n".join(lines))
    assert (report_dir / "fault_sweep.txt").exists()


def _chaos_percentile_section():
    """Recovery-time / message-overhead percentiles per fault class.

    Runs a deterministic chaos campaign (three supervised runs per fault
    class) on the bench graph and reports p50/p99 of rounds-over-baseline
    and messages-over-baseline — the distributions the resilience
    subsystem promises to keep bounded (see docs/resilience.md).
    """
    from repro.resilience import ChaosConfig, chaos_campaign

    classes = ("loss", "burst", "dup", "reorder", "crash", "mixed")
    report = chaos_campaign(
        GRAPH,
        config=ChaosConfig(
            budget_seconds=None,
            max_runs=3 * len(classes),
            seed=SEED,
            fault_classes=classes,
        ),
    )
    lines = [
        "",
        "Chaos percentiles: recovery time (rounds/baseline) and message",
        f"overhead (messages/baseline), {report.runs} supervised runs,",
        f"baseline {report.baseline_rounds} rounds / "
        f"{report.baseline_messages} messages, "
        f"survivability {100.0 * report.survivability:.1f}%, "
        f"monitor violations {report.monitor_violations}",
        "",
        f"{'class':>8} {'runs':>5} {'recov p50':>10} {'recov p99':>10} "
        f"{'msg p50':>8} {'msg p99':>8}",
    ]
    for name, agg in report.per_class().items():
        rec = agg["recovery_ratio"]
        ovh = agg["message_overhead"]
        lines.append(
            f"{name:>8} {agg['runs']:>5} {rec['p50']:>10.2f} "
            f"{rec['p99']:>10.2f} {ovh['p50']:>8.2f} {ovh['p99']:>8.2f}"
        )
    return lines
