#!/usr/bin/env python
"""Engine scaling benchmark: fast-path delivery core vs. general loop.

Sweeps Erdős–Rényi and scale-free graphs at n ∈ {1k, 10k, 50k} across
three workloads —

* ``flood``    — every node broadcasts a rolling checksum for 30 rounds,
  the delivery-bound workload the fast path targets (dense tier);
* ``alg1``     — the paper's Algorithm 1 edge coloring (mixed phases:
  broadcasts, unicast fans, staggered halting);
* ``dima2ed``  — the DiMa2Ed strong coloring on the symmetric closure —

and runs each with the seed engine's general loop (``fastpath=False``,
``compute="pernode"``), the fast delivery path (``fastpath=True``), and
— for the two algorithm kinds — the batched compute core
(``compute="batched"``), the fused palette-plane kernels
(``compute="vectorized"``), the disk-backed sharded tier
(``compute="sharded"``; skipped where no spill directory is writable)
and, where numba is installed, the JIT round kernel
(``compute="numba"``), recording wall time, rounds/sec, delivered
messages/sec and peak RSS.  The sharded tier is reported as an
*overhead* ratio over the vectorized kernels — it trades wall time for
a bounded memory footprint, and its scaling story lives in
``bench_shard_scaling.py``.  Each measurement executes in a
forked child process so the RSS high-water mark is per-run, not
cumulative.  All paths must be *bit-identical* (same metrics dict, same
final program state digest) — any divergence fails the benchmark, so
every run doubles as a correctness gate.

Results land in ``BENCH_engine.json`` at the repo root by default.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --smoke    # CI subset
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --smoke \
        --out /tmp/smoke.json --check BENCH_engine.json                 # regression gate

The ``--check`` gate compares *speedup ratios* (fast vs. general on the
same machine, same moment), not absolute wall times, so it is stable
across host speeds; a workload regresses if its measured speedup falls
more than ``--tolerance`` (default 20%) below the committed baseline.

``--history [PATH]`` appends the sweep to the bench-history trajectory
(``benchmarks/out/bench_history.jsonl``) and ``--compare BASELINE``
diffs the sweep against a stored baseline — either a ``BENCH_engine``
style JSON report or a history JSONL (its most recent entry) — with
per-(workload, tier) verdicts: wall-time gates on the same host,
speedup-ratio gates everywhere (see ``benchlib.compare_entries``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing as mp
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import benchlib  # noqa: E402
from benchlib import peak_rss_kb  # noqa: E402

from repro.core.dima2ed import strong_color_arcs  # noqa: E402
from repro.core.edge_coloring import color_edges  # noqa: E402
from repro.graphs.generators import erdos_renyi_avg_degree, scale_free  # noqa: E402
from repro.runtime.engine import SynchronousEngine  # noqa: E402
from repro.runtime.message import Message  # noqa: E402
from repro.runtime.node import Context, NodeProgram  # noqa: E402
from repro.runtime.observe import AutomatonTelemetry  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_engine.json"
FLOOD_ROUNDS = 30


class Flood(NodeProgram):
    """All nodes broadcast a rolling checksum each round, then halt.

    Every superstep is a full-graph broadcast with no halted receivers,
    which is the delivery-bound regime the fast path's dense tier owns.
    The probe does O(1) work per superstep (it folds only the inbox
    *length* into its state) so the measurement isolates the engine's
    delivery rate rather than Python-level message processing; payload
    content and ordering identity between the two paths is enforced by
    the metrics comparison here plus the order-sensitive ``alg1`` /
    ``dima2ed`` workloads and the property suite
    (``tests/property/test_engine_equivalence.py``).
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.acc = node_id + 1

    def on_superstep(self, ctx: Context, inbox: Sequence[Message]):
        self.acc = (self.acc * 31 + len(inbox)) % 1_000_003
        if ctx.superstep >= FLOOD_ROUNDS:
            self.halt()
        else:
            ctx.broadcast(self.acc)


#: name -> spec.  ``smoke`` entries form the CI subset; they keep the
#: same keys as the full sweep so ``--check`` can diff either file.
WORKLOADS: Dict[str, Dict[str, Any]] = {
    "flood-er-n1000-d32": dict(kind="flood", family="er", n=1_000, deg=32.0, smoke=False),
    "flood-er-n10000-d32": dict(kind="flood", family="er", n=10_000, deg=32.0, smoke=True),
    "flood-er-n50000-d32": dict(kind="flood", family="er", n=50_000, deg=32.0, smoke=False),
    "flood-sf-n10000-m16": dict(kind="flood", family="sf", n=10_000, m=16, smoke=False),
    "alg1-er-n1000-d8": dict(kind="alg1", family="er", n=1_000, deg=8.0, smoke=True),
    "alg1-er-n10000-d8": dict(kind="alg1", family="er", n=10_000, deg=8.0, smoke=False),
    "alg1-sf-n1000-m4": dict(kind="alg1", family="sf", n=1_000, m=4, smoke=True),
    "alg1-sf-n10000-m4": dict(kind="alg1", family="sf", n=10_000, m=4, smoke=False),
    "dima2ed-er-n1000-d6": dict(kind="dima2ed", family="er", n=1_000, deg=6.0, smoke=False),
}

GRAPH_SEED = 1
RUN_SEED = 0


def _build_graph(spec: Dict[str, Any]):
    if spec["family"] == "er":
        return erdos_renyi_avg_degree(spec["n"], spec["deg"], seed=GRAPH_SEED)
    return scale_free(spec["n"], spec["m"], seed=GRAPH_SEED)


def _digest(obj: Any) -> str:
    return hashlib.sha256(repr(obj).encode()).hexdigest()[:16]


#: mode -> keyword arguments for the algorithm entry points.  ``general``
#: is the seed engine's per-node loop, ``fast`` the vectorised delivery
#: path, ``batched`` the per-superstep structure-of-arrays core,
#: ``vectorized`` the fused palette-plane kernels, ``numba`` the JIT
#: round kernel (Alg1 only; requires numba).
MODES: Dict[str, Dict[str, Any]] = {
    "general": dict(fastpath=False, compute="pernode"),
    "fast": dict(fastpath=True, compute="pernode"),
    "batched": dict(fastpath=True, compute="batched"),
    "vectorized": dict(fastpath=True, compute="vectorized"),
    "numba": dict(fastpath=True, compute="numba"),
    "sharded": dict(fastpath=True, compute="sharded"),
}

#: ``to_dict`` fields only the sharded tier carries; the wall-clock and
#: RSS ones are host noise, the others simply absent elsewhere — all
#: are stripped before cross-mode identity comparison.
_SHARD_ONLY_FIELDS = (
    "shard_workers",
    "cross_shard_bytes",
    "shard_exchange_seconds",
    "shard_peak_rss_kb",
)


def _numba_usable() -> bool:
    from repro.core.kernels_numba import numba_available

    return numba_available()


def _modes_for(spec: Dict[str, Any]) -> list:
    """The measurement modes applicable to one workload."""
    modes = ["general", "fast"]
    if spec["kind"] in ("alg1", "dima2ed"):
        modes += ["batched", "vectorized"]
        # compute="numba" without numba installed just reruns the
        # vectorized kernel — measure it only where the JIT actually
        # engages.
        if _numba_usable():
            modes.append("numba")
        if _sharded_usable():
            modes.append("sharded")
    return modes


def _sharded_usable() -> bool:
    from repro.graphs.shards import sharded_available

    return sharded_available()


def _run_one(spec: Dict[str, Any], mode: str, repeats: int) -> Dict[str, Any]:
    """Build the graph once and time ``repeats`` engine runs in a fork.

    Reports the *minimum* wall time (the standard noise-resistant
    estimator for a deterministic computation); the run result itself is
    deterministic, which the digest comparison across repeats asserts.
    """
    g = _build_graph(spec)
    kind = spec["kind"]
    kwargs = MODES[mode]
    dg = g.to_directed() if kind == "dima2ed" else None
    wall = float("inf")
    metrics = rounds = state = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        if kind == "flood":
            run = SynchronousEngine(
                g, Flood, seed=RUN_SEED, fastpath=kwargs["fastpath"]
            ).run()
            w = time.perf_counter() - t0
            m, r = run.metrics.to_dict(), run.supersteps
            s = _digest([p.acc for p in run.programs])
        elif kind == "alg1":
            res = color_edges(g, seed=RUN_SEED, **kwargs)
            w = time.perf_counter() - t0
            m, r = res.metrics.to_dict(), res.rounds
            s = _digest(sorted(res.colors.items()))
        else:
            res = strong_color_arcs(dg, seed=RUN_SEED, **kwargs)
            w = time.perf_counter() - t0
            m, r = res.metrics.to_dict(), res.rounds
            s = _digest(sorted(res.colors.items()))
        # The sharded tier's wall-clock/RSS cost fields are host noise;
        # drop them so the determinism check below sees only counters.
        m.pop("shard_exchange_seconds", None)
        m.pop("shard_peak_rss_kb", None)
        if state is not None and (s, m) != (state, metrics):
            raise RuntimeError(f"non-deterministic result for {spec} mode={mode}")
        metrics, rounds, state = m, r, s
        wall = min(wall, w)
    # One extra, untimed run collecting automaton telemetry for the
    # algorithm workloads (fast mode only — telemetry is bit-identical
    # across modes, asserted by the test-suite, so one copy per workload
    # suffices): convergence shape travels with the report without
    # perturbing the timing measurement above.
    telemetry = None
    if kind in ("alg1", "dima2ed") and mode == "fast":
        collector = AutomatonTelemetry()
        if kind == "alg1":
            color_edges(g, seed=RUN_SEED, telemetry=collector, **kwargs)
        else:
            strong_color_arcs(dg, seed=RUN_SEED, telemetry=collector, **kwargs)
        telemetry = collector.compact_dict(max_points=32)
    delivered = metrics["messages_delivered"]
    return {
        "telemetry": telemetry,
        "wall_s": round(wall, 4),
        "supersteps": metrics["supersteps"],
        "rounds": rounds,
        "rounds_per_s": round(rounds / wall, 2),
        "messages_delivered": delivered,
        "delivered_per_s": round(delivered / wall, 1),
        "peak_rss_kb": peak_rss_kb(),
        "metrics": metrics,
        "state_digest": state,
    }


def _measure(spec: Dict[str, Any], mode: str, repeats: int) -> Dict[str, Any]:
    """Run the measurement in a forked child for per-run peak RSS."""
    if "fork" not in mp.get_all_start_methods():
        return _run_one(spec, mode, repeats)  # in-process fallback (RSS cumulative)
    ctx = mp.get_context("fork")
    parent, child = ctx.Pipe()

    def _child(conn):
        try:
            conn.send(("ok", _run_one(spec, mode, repeats)))
        except BaseException as exc:  # surface the failure in the parent
            conn.send(("err", repr(exc)))
        finally:
            conn.close()

    proc = ctx.Process(target=_child, args=(child,))
    proc.start()
    child.close()
    status, payload = parent.recv()
    proc.join()
    if status != "ok":
        raise RuntimeError(f"benchmark child failed for {spec}: {payload}")
    return payload


def _ratio(num: float, den: float) -> float:
    return round(num / den, 3) if den else float("inf")


def run_sweep(smoke: bool, repeats: int) -> Dict[str, Any]:
    workloads: Dict[str, Any] = {}
    for name, spec in WORKLOADS.items():
        if smoke and not spec["smoke"]:
            continue
        results: Dict[str, Dict[str, Any]] = {}
        for mode in _modes_for(spec):
            print(f"[{name}] {mode:<10s} ...", flush=True)
            results[mode] = _measure(spec, mode, repeats=repeats)
        slow, fast = results["general"], results["fast"]
        identical = all(
            {k: v for k, v in r["metrics"].items() if k not in _SHARD_ONLY_FIELDS}
            == slow["metrics"]
            and r["state_digest"] == slow["state_digest"]
            for r in results.values()
        )
        speedup = _ratio(slow["wall_s"], fast["wall_s"])
        speedup_delivered = _ratio(
            fast["delivered_per_s"], slow["delivered_per_s"]
        )
        entry = {
            "kind": spec["kind"],
            "family": spec["family"],
            "n": spec["n"],
            "speedup_wall": speedup,
            "speedup_delivered": speedup_delivered,
            "identical": identical,
        }
        for mode, result in results.items():
            entry[mode] = {
                k: v for k, v in result.items() if k not in ("metrics", "telemetry")
            }
        batched = results.get("batched")
        if batched is not None:
            entry["speedup_batched_over_fast"] = _ratio(
                fast["wall_s"], batched["wall_s"]
            )
            entry["speedup_batched_wall"] = _ratio(
                slow["wall_s"], batched["wall_s"]
            )
        vec = results.get("vectorized")
        if vec is not None:
            entry["speedup_vectorized_wall"] = _ratio(slow["wall_s"], vec["wall_s"])
            entry["speedup_vectorized_over_fast"] = _ratio(
                fast["wall_s"], vec["wall_s"]
            )
            if batched is not None:
                entry["speedup_vectorized_over_batched"] = _ratio(
                    batched["wall_s"], vec["wall_s"]
                )
        jit = results.get("numba")
        if jit is not None and vec is not None:
            entry["speedup_numba_over_vectorized"] = _ratio(
                vec["wall_s"], jit["wall_s"]
            )
        sharded = results.get("sharded")
        if sharded is not None and vec is not None:
            # A cost, not a speedup: the disk-backed tier trades wall
            # time for a bounded footprint (see bench_shard_scaling.py).
            entry["overhead_sharded_over_vectorized"] = _ratio(
                sharded["wall_s"], vec["wall_s"]
            )
        if fast.get("telemetry") is not None:
            entry["telemetry"] = fast["telemetry"]
        workloads[name] = entry
        flag = "OK " if identical else "DIVERGED"
        extra = "".join(
            f" {mode} {results[mode]['wall_s']:.3f}s"
            for mode in ("batched", "vectorized", "numba")
            if mode in results
        )
        print(
            f"[{name}] {flag} general {slow['wall_s']:.3f}s "
            f"fast {fast['wall_s']:.3f}s  x{speedup:.2f} wall "
            f"x{speedup_delivered:.2f} delivered/s{extra}",
            flush=True,
        )
    return {
        "schema": 3,
        "generated_by": "benchmarks/bench_engine_scaling.py",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "flood_rounds": FLOOD_ROUNDS,
        "repeats": repeats,
        #: Unit contract for the per-mode measurement fields; peak RSS is
        #: normalised to KiB at the source (see benchlib.peak_rss_kb).
        "units": {"wall_s": "seconds", "peak_rss_kb": "KiB"},
        "workloads": workloads,
    }


#: Workloads with a baseline speedup below this are compute-bound (the
#: program dominates, not delivery); their ratio sits within scheduler
#: noise on shared CI runners, so they are reported but not gated.
GATE_MIN_SPEEDUP = 1.5

#: The batched/fast ratio a healthy batched core must clear.  The smoke
#: workloads' batched walls are well under 0.1 s, so their measured
#: ratio swings ±50% with scheduler noise; the gate therefore fails only
#: when the ratio regresses below baseline *and* falls under this floor
#: — i.e. when the batched core has genuinely lost its categorical edge,
#: not merely a noisy multiple of it.
BATCHED_GATE_FLOOR = 2.5

#: Same idea for the fused palette-plane kernels' edge over the fast
#: per-node path.  The vectorized core clears ~7-10x on the algorithm
#: workloads, so 5x is the point where it has genuinely lost its
#: categorical advantage rather than caught scheduler noise.
VECTORIZED_GATE_FLOOR = 5.0


def check_against(report: Dict[str, Any], baseline_path: Path, tolerance: float) -> int:
    """Gate: fail if a delivery-bound workload's speedup regressed > tolerance."""
    baseline = json.loads(baseline_path.read_text())
    failures = 0
    compared = 0
    for name, entry in report["workloads"].items():
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        compared += 1
        floor = base["speedup_delivered"] * (1.0 - tolerance)
        if base["speedup_delivered"] < GATE_MIN_SPEEDUP:
            status = "info (compute-bound, not gated)"
        elif entry["speedup_delivered"] < floor:
            failures += 1
            status = "REGRESSED"
        else:
            status = "ok"
        print(
            f"check [{name}] baseline x{base['speedup_delivered']:.2f} "
            f"now x{entry['speedup_delivered']:.2f} "
            f"(floor x{floor:.2f}) {status}"
        )
        # Same gate for the compute cores' edge over the fast path, when
        # both sides measured it.
        for field, label, abs_floor in (
            ("speedup_batched_over_fast", "batched/fast", BATCHED_GATE_FLOOR),
            (
                "speedup_vectorized_over_fast",
                "vectorized/fast",
                VECTORIZED_GATE_FLOOR,
            ),
        ):
            base_b = base.get(field)
            now_b = entry.get(field)
            if base_b is None or now_b is None:
                continue
            if field == "speedup_vectorized_over_fast" and (
                base.get("speedup_vectorized_over_batched") or 0.0
            ) < 1.0:
                # Small-n crossover regime: the plane kernels' fixed
                # costs make batched the preferred backend here, so
                # there is no categorical vectorized edge to defend and
                # the sub-0.1 s walls make the ratio pure noise.
                print(
                    f"check [{name}] {label} baseline x{base_b:.2f} "
                    "info (batched-preferred size, not gated)"
                )
                continue
            floor_b = base_b * (1.0 - tolerance)
            if base_b < GATE_MIN_SPEEDUP:
                status = "info (below gate threshold, not gated)"
            elif now_b < floor_b and now_b < abs_floor:
                failures += 1
                status = "REGRESSED"
            elif now_b < floor_b:
                status = f"info (noisy, still >= x{abs_floor:.1f})"
            else:
                status = "ok"
            print(
                f"check [{name}] {label} baseline x{base_b:.2f} "
                f"now x{now_b:.2f} (floor x{floor_b:.2f}) {status}"
            )
    if compared == 0:
        print("check: no shared workloads between run and baseline", file=sys.stderr)
        return 1
    return 1 if failures else 0


def profile_workload(name: str, repeats: int) -> int:
    """``--profile``: per-phase wall-clock breakdown for one workload.

    Runs each applicable mode once with a
    :class:`~repro.runtime.observe.PhaseProfiler` attached and prints
    where the engine's superstep time goes (delivery, compute, ...).
    """
    from repro.runtime.observe import PhaseProfiler

    spec = WORKLOADS.get(name)
    if spec is None:
        print(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    g = _build_graph(spec)
    kind = spec["kind"]
    dg = g.to_directed() if kind == "dima2ed" else None
    for mode in _modes_for(spec):
        kwargs = MODES[mode]
        best: Optional[Dict[str, float]] = None
        best_total = float("inf")
        for _ in range(max(1, repeats)):
            prof = PhaseProfiler()
            if kind == "flood":
                run = SynchronousEngine(
                    g,
                    Flood,
                    seed=RUN_SEED,
                    fastpath=kwargs["fastpath"],
                    profiler=prof,
                ).run()
                phases = dict(run.metrics.phase_seconds)
            elif kind == "alg1":
                res = color_edges(g, seed=RUN_SEED, profiler=prof, **kwargs)
                phases = dict(res.metrics.phase_seconds)
            else:
                res = strong_color_arcs(dg, seed=RUN_SEED, profiler=prof, **kwargs)
                phases = dict(res.metrics.phase_seconds)
            total = sum(phases.values())
            if total < best_total:
                best, best_total = phases, total
        print(f"[{name}] {mode} — {best_total:.4f}s profiled:")
        for phase, secs in sorted(best.items(), key=lambda kv: -kv[1]):
            share = secs / best_total if best_total else 0.0
            print(f"    {phase:<12s} {secs:8.4f}s  {share:6.1%}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="run only the CI subset of workloads"
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="alg1-er-n1000-d8",
        default=None,
        metavar="WORKLOAD",
        help="print a phase-profiler breakdown for one workload (default "
        "alg1-er-n1000-d8) instead of running the sweep",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="where to write the JSON report"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare speedups against a committed baseline JSON and exit "
        "non-zero on regression",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="engine runs per (workload, path); min wall time is reported",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative speedup regression for --check (default 0.20)",
    )
    parser.add_argument(
        "--history",
        nargs="?",
        type=Path,
        const=benchlib.DEFAULT_HISTORY,
        default=None,
        metavar="PATH",
        help="append this sweep to the bench-history JSONL trajectory "
        f"(default {benchlib.DEFAULT_HISTORY.relative_to(REPO_ROOT)})",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="diff this sweep against a stored baseline — a BENCH_engine "
        "style JSON report or a history JSONL (most recent entry) — and "
        "exit non-zero on a regression verdict",
    )
    args = parser.parse_args(argv)

    if args.profile is not None:
        return profile_workload(args.profile, repeats=args.repeats)

    report = run_sweep(smoke=args.smoke, repeats=args.repeats)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    rc = 0
    diverged = [k for k, v in report["workloads"].items() if not v["identical"]]
    if diverged:
        print(
            f"FAIL: fast/batched path diverged from general loop on {diverged}",
            file=sys.stderr,
        )
        rc = 1
    if args.check is not None:
        rc = max(rc, check_against(report, args.check, args.tolerance))
    if args.history is not None or args.compare is not None:
        entry = benchlib.history_entry_from_report(report)
        if args.history is not None:
            path = benchlib.append_bench_history(entry, args.history)
            print(f"history: appended to {path}")
        if args.compare is not None:
            baseline = _load_compare_baseline(args.compare)
            if baseline is None:
                print(
                    f"compare: no usable baseline entry in {args.compare}",
                    file=sys.stderr,
                )
                rc = max(rc, 2)
            else:
                result = benchlib.compare_entries(entry, baseline)
                print(benchlib.format_compare(result))
                if not result["ok"]:
                    rc = max(rc, 1)
    return rc


def _load_compare_baseline(path: Path) -> Optional[Dict[str, Any]]:
    """A history entry from ``path`` — report JSON or history JSONL.

    A ``.jsonl`` trajectory yields its most recent entry; anything else
    is parsed as a ``BENCH_engine``-style report and flattened.  The
    report form carries no host fingerprint of its own, so it borrows
    the committed report's python/machine fields when present.
    """
    if path.suffix == ".jsonl":
        entries = benchlib.read_bench_history(path)
        return entries[-1] if entries else None
    report = json.loads(path.read_text())
    host = benchlib.host_fingerprint()
    if report.get("python") != host["python"] or (
        report.get("machine") not in (None, host["machine"])
    ):
        # Recorded elsewhere: synthesize a distinct fingerprint so wall
        # verdicts are skipped and only speedup ratios are gated.
        host = {
            "machine": report.get("machine", "unknown"),
            "system": "unknown",
            "python": report.get("python", "unknown"),
            "fingerprint": "baseline-" + str(report.get("python", "?")),
        }
    return benchlib.history_entry_from_report(
        report, recorded=report.get("recorded", "baseline"), host=host
    )


if __name__ == "__main__":
    raise SystemExit(main())
