"""Bench FIG5 — Algorithm 1 on small-world graphs (paper §IV-C, Figure 5).

Expected shape: rounds linear in Δ, independent of n; colors always
below 2Δ−1; dense large cells exceed Δ+1 (the paper's Conjecture-2
counterexample, max observed Δ+5 at n=256 dense).
"""

import pytest

from conftest import save_report
from repro.core.edge_coloring import color_edges
from repro.experiments import fig5_small_world
from repro.graphs.generators import small_world
from repro.verify import assert_proper_edge_coloring

CELLS = []
for n in fig5_small_world.SIZES:
    CELLS.append((n, fig5_small_world.SPARSE_K, "sparse"))
    CELLS.append((n, fig5_small_world.dense_k(n), "dense"))


@pytest.mark.parametrize(
    "n,k,regime", CELLS, ids=[f"n{n}-{r}" for n, _, r in CELLS]
)
def test_fig5_cell(benchmark, n, k, regime):
    """Time one Algorithm 1 run per (n, sparse/dense) cell."""
    graph = small_world(n, k, fig5_small_world.REWIRE_BETA, seed=2012)
    result = benchmark.pedantic(
        lambda: color_edges(graph, seed=2012), rounds=3, iterations=1
    )
    assert_proper_edge_coloring(graph, result.colors)
    benchmark.extra_info.update(
        delta=result.delta,
        rounds=result.rounds,
        colors=result.num_colors,
        excess=result.num_colors - result.delta,
    )
    # Always below the worst case.
    assert result.num_colors < 2 * result.delta - 1


def test_fig5_series(benchmark, report_dir):
    """Regenerate the figure series at 2 replicates per cell."""

    def run():
        return fig5_small_world.run(scale=0.04, base_seed=2012)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    fit = report.rounds_fit()
    benchmark.extra_info.update(
        runs=len(report.records),
        slope_rounds_vs_delta=round(fit.slope, 2),
        max_excess_colors=max(r.excess_colors for r in report.records),
    )
    save_report(report_dir, "fig5_small_world", report.render())
    assert 1.0 < fit.slope < 4.0
