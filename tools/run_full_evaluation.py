#!/usr/bin/env python
"""Regenerate the complete evaluation at paper scale.

Runs every experiment in the per-experiment index (DESIGN.md §3) at the
paper's replicate counts, writes each report to ``results/<name>.txt``,
persists the raw run records of the four figures as JSON, and emits a
``results/summary.md`` with the headline numbers (slope CIs included).
EXPERIMENTS.md was written from an earlier run of exactly this script.

Takes ~10 minutes on a laptop.  Usage:

    python tools/run_full_evaluation.py [--scale 1.0] [--seed 2012] [--out results]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.analysis.bootstrap import slope_ci
from repro.analysis.significance import n_independence_test
from repro.experiments import (
    ablations,
    baselines_compare,
    extensions_compare,
    fig3_erdos_renyi,
    fig4_scale_free,
    fig5_small_world,
    fig6_dima2ed,
    message_complexity,
    prop1_pairing,
    synchronizer_overhead,
    udg_channels,
)
from repro.experiments.persistence import save_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--out", type=Path, default=Path("results"))
    args = parser.parse_args()
    out: Path = args.out
    out.mkdir(parents=True, exist_ok=True)

    summary = ["# Full evaluation summary", ""]
    t_start = time.time()

    figures = {
        "fig3_erdos_renyi": fig3_erdos_renyi,
        "fig4_scale_free": fig4_scale_free,
        "fig5_small_world": fig5_small_world,
        "fig6_dima2ed": fig6_dima2ed,
    }
    reports = {}
    for name, module in figures.items():
        t0 = time.time()
        report = module.run(scale=args.scale, base_seed=args.seed)
        reports[name] = report
        (out / f"{name}.txt").write_text(report.render() + "\n", encoding="utf-8")
        save_report(report, out / f"{name}.json")
        points = [(r.delta, r.rounds) for r in report.records]
        ci = slope_ci(points, seed=args.seed, resamples=1000)
        summary.append(
            f"* **{name}** — {len(report.records)} runs in "
            f"{time.time() - t0:.0f}s; rounds-vs-Δ slope {ci}; "
            f"max colors−Δ = {max(r.excess_colors for r in report.records)}"
        )
        print(summary[-1])

    independence = n_independence_test(
        reports["fig3_erdos_renyi"].records, "ER n=200 deg=8", "ER n=400 deg=8"
    )
    summary.append(
        f"* **n-independence (fig3, deg=8)** — rounds/Δ means "
        f"{independence.mean_a:.2f} vs {independence.mean_b:.2f}, "
        f"p = {independence.p_value:.2f} "
        f"({'no detectable n effect' if not independence.significant_at_5pct else 'n EFFECT DETECTED'})"
    )
    print(summary[-1])

    extras = {
        "prop1_pairing": lambda: prop1_pairing.render(prop1_pairing.run()),
        "baselines_compare": lambda: baselines_compare.render(baselines_compare.run()),
        "ablations": lambda: "\n\n".join(
            [
                ablations.render_rows(
                    "invite-coin bias (Algorithm 1)", ablations.sweep_invite_bias()
                ),
                ablations.render_rows(
                    "proposal/acceptance rules (Algorithm 1)",
                    ablations.compare_color_rules(),
                ),
                ablations.render_rows(
                    "channel strategy (DiMa2Ed)", ablations.compare_channel_strategies()
                ),
                ablations.render_rows(
                    "message loss (Algorithm 1)", ablations.fault_injection_study()
                ),
            ]
        ),
        "udg_channels": lambda: udg_channels.render(udg_channels.run()),
        "message_complexity": lambda: "\n\n".join(
            [
                message_complexity.render("n-sweep", message_complexity.run_n_sweep()),
                message_complexity.render(
                    "degree-sweep", message_complexity.run_degree_sweep()
                ),
            ]
        ),
        "extensions_compare": lambda: extensions_compare.render(
            extensions_compare.run_sweep()
        ),
        "synchronizer_overhead": lambda: synchronizer_overhead.render(
            synchronizer_overhead.run()
        ),
    }
    for name, produce in extras.items():
        t0 = time.time()
        text = produce()
        (out / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        summary.append(f"* **{name}** — regenerated in {time.time() - t0:.0f}s")
        print(summary[-1])

    summary.append("")
    summary.append(f"Total wall clock: {time.time() - t_start:.0f}s.")
    (out / "summary.md").write_text("\n".join(summary) + "\n", encoding="utf-8")
    print(f"\nall reports in {out}/")


if __name__ == "__main__":
    main()
